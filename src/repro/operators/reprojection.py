"""Re-projection to a new coordinate system (Section 3.2, Fig. 2b).

"From a query processing point of view ... such types of spatial
transform operators may block for a considerable amount of time, as the
computation of the value of a point y in Y may require any number of
points from X. An implementation ... can be tailored by utilizing
metadata about the spatial extent of the current scan sector and the
spatial resolution associated with X and Y."

:class:`Reproject` implements exactly that tailoring:

* When the first chunk of a frame arrives, the scan-sector metadata
  (:class:`~repro.core.metadata.FrameInfo`) gives the full source extent,
  from which the output lattice is derived ("a regular lattice
  corresponding in size and aspect to the lattice of the original point
  set X is overlayed over the spatial extent of the new point lattice").
* For every output row, the operator precomputes which band of source
  rows it needs (inverse-projected coordinates plus the interpolation
  kernel footprint). Output rows are emitted *as soon as* their band is
  complete, and source rows no longer needed by any pending output row
  are evicted — so the buffer high-water mark is the worst-case row band,
  not the whole frame, for row-aligned projections (experiment E4).
* At frame end, remaining output rows are emitted using boundary
  interpolation over whatever source rows exist, the paper's remedy for
  the operator that "could potentially block forever".
* A stream with **no** frame metadata and no user-supplied output lattice
  raises :class:`~repro.errors.BlockingHazardError` — the very hazard the
  paper warns about.

Point streams re-project point-by-point with no buffering at all.
"""

from __future__ import annotations

import math
from dataclasses import replace as dc_replace
from typing import Iterable

import numpy as np

from ..core.chunk import Chunk, GridChunk, PointChunk, fast_grid_chunk
from ..core.columnar import RollingCanvas
from ..core.lattice import GridLattice
from ..core.metadata import FrameInfo
from ..core.stream import StreamMetadata
from ..core.valueset import FLOAT32
from ..errors import BlockingHazardError, OperatorError, RegionError
from ..geo.crs import CRS, transform_points
from ..raster.interpolate import KERNEL_FOOTPRINT, sample
from .base import Operator

__all__ = ["Reproject"]


class _FrameReprojection:
    """Per-frame navigation state: where each output row reads from."""

    def __init__(
        self,
        src_lattice: GridLattice,
        dst_lattice: GridLattice,
        footprint: int,
    ) -> None:
        self.src_lattice = src_lattice
        self.dst_lattice = dst_lattice
        ox, oy = dst_lattice.meshgrid()
        sx, sy = transform_points(dst_lattice.crs, src_lattice.crs, ox, oy)
        self.rows = src_lattice.fractional_row(sy)
        self.cols = src_lattice.fractional_col(sx)
        h_out = dst_lattice.height
        self.row_min = np.full(h_out, 0, dtype=np.int64)
        self.row_max = np.full(h_out, -1, dtype=np.int64)
        for j in range(h_out):
            finite = self.rows[j][np.isfinite(self.rows[j])]
            if finite.size == 0:
                continue  # row entirely outside the source: emit as fill
            self.row_min[j] = max(0, int(math.floor(finite.min())) - footprint)
            self.row_max[j] = min(
                src_lattice.height - 1, int(math.ceil(finite.max())) + footprint
            )
        # floor_from[j] == min(row_min[j:]) with the source height as the
        # empty-suffix sentinel, so needed_floor is an O(1) lookup instead
        # of a fresh suffix scan after every emitted row.
        self.floor_from = np.empty(h_out + 1, dtype=np.int64)
        self.floor_from[h_out] = src_lattice.height
        if h_out:
            self.floor_from[:h_out] = np.minimum.accumulate(self.row_min[::-1])[::-1]
        self.next_out = 0

    def needed_floor(self) -> int:
        """Lowest source row any not-yet-emitted output row still needs."""
        return int(self.floor_from[self.next_out])


class Reproject(Operator):
    """Resample a stream onto a lattice in a different coordinate system."""

    name = "reproject"

    def __init__(
        self,
        dst_crs: CRS,
        dst_lattice: GridLattice | None = None,
        resolution: tuple[float, float] | None = None,
        method: str = "bilinear",
        fill: float = np.nan,
    ) -> None:
        super().__init__()
        if method not in KERNEL_FOOTPRINT:
            raise OperatorError(
                f"unknown interpolation method {method!r}; expected one of "
                f"{sorted(KERNEL_FOOTPRINT)}"
            )
        if dst_lattice is not None and dst_lattice.crs != dst_crs:
            raise OperatorError("dst_lattice must live in dst_crs")
        self.dst_crs = dst_crs
        self.dst_lattice = dst_lattice
        self.resolution = resolution
        self.method = method
        self.fill = fill
        self._footprint = KERNEL_FOOTPRINT[method]
        self._nav: _FrameReprojection | None = None
        self._frame_id: int | None = None
        self._src_rows: dict[int, GridChunk] = {}
        self._meta: tuple[str, float, int | None] = ("", 0.0, None)
        # Columnar state. Navigation (inverse-projected coordinates, row
        # bands) is a pure function of the source frame lattice and the
        # operator config, so it is cached across frames and resets — the
        # per-frame part is just next_out, reset in _begin_frame_columnar.
        # Source rows live in one contiguous rolling canvas instead of a
        # dict of row chunks; _row_sizes keeps their buffer accounting.
        self._nav_cache: dict[GridLattice, _FrameReprojection] = {}
        self._canvas: RollingCanvas | None = None
        self._row_sizes: dict[int, tuple[int, int]] = {}
        self._dst_row_cache: dict[GridLattice, dict[int, GridLattice]] = {}

    def _reset_state(self) -> None:
        self._nav = None
        self._frame_id = None
        self._src_rows = {}
        self._row_sizes = {}

    # -- output lattice derivation --------------------------------------------

    def _derive_dst_lattice(self, src_lattice: GridLattice) -> GridLattice:
        if self.dst_lattice is not None:
            return self.dst_lattice
        try:
            dst_bbox = src_lattice.bbox.transformed(self.dst_crs)
        except RegionError as exc:
            raise OperatorError(
                f"source frame extent has no image in {self.dst_crs.name}: {exc}"
            ) from exc
        if self.resolution is not None:
            dx, dy = self.resolution
        else:
            dx = dst_bbox.width / src_lattice.width
            dy = dst_bbox.height / src_lattice.height
        return GridLattice.from_bbox(dst_bbox, dx, dy, self.dst_crs)

    # -- frame lifecycle ---------------------------------------------------------

    def _begin_frame(self, chunk: GridChunk) -> None:
        if chunk.frame is not None:
            src_lattice = chunk.frame.lattice
            self._frame_id = chunk.frame.frame_id
        elif chunk.last_in_frame and chunk.row0 == 0:
            src_lattice = chunk.lattice
            self._frame_id = None
        else:
            raise BlockingHazardError(
                "re-projection needs scan-sector metadata (FrameInfo) or an "
                "explicit output lattice; without knowing the frame extent the "
                "operator could block forever (Section 3.2)"
            )
        self._nav = _FrameReprojection(
            src_lattice, self._derive_dst_lattice(src_lattice), self._footprint
        )

    def _store_rows(self, chunk: GridChunk) -> None:
        for local_row in range(chunk.lattice.height):
            row = chunk.subwindow(local_row, 0, 1, chunk.lattice.width)
            abs_row = row.row0
            if abs_row in self._src_rows:
                self.stats.buffer_remove_chunk(self._src_rows[abs_row])
            self._src_rows[abs_row] = row
            self.stats.buffer_add_chunk(row)

    def _highest_contiguous_row(self) -> int:
        """Highest source row r such that all rows 0..r have been seen or
        evicted (evicted rows were already consumed)."""
        # Rows are delivered in order by our instruments; the max stored
        # row is the watermark. Out-of-order delivery would need a gap set;
        # the ordered-stream model of the paper makes this sufficient.
        return max(self._src_rows, default=-1)

    def _emit_ready(self, force: bool) -> Iterable[GridChunk]:
        nav = self._nav
        assert nav is not None
        watermark = self._highest_contiguous_row()
        h_out = nav.dst_lattice.height
        while nav.next_out < h_out:
            j = nav.next_out
            if not force and nav.row_max[j] > watermark:
                break
            yield self._emit_row(j)
            nav.next_out += 1
            # Evict source rows nothing pending needs anymore.
            floor = nav.needed_floor()
            for r in [r for r in self._src_rows if r < floor]:
                self.stats.buffer_remove_chunk(self._src_rows.pop(r))
        if force:
            for r in list(self._src_rows):
                self.stats.buffer_remove_chunk(self._src_rows.pop(r))
            self._nav = None
            self._frame_id = None

    def _emit_row(self, j: int) -> GridChunk:
        nav = self._nav
        assert nav is not None
        band, t, sector = self._meta
        r_lo, r_hi = int(nav.row_min[j]), int(nav.row_max[j])
        if r_hi < r_lo:
            out = np.full((1, nav.dst_lattice.width), self.fill, dtype=np.float64)
        else:
            stack = np.full(
                (r_hi - r_lo + 1, nav.src_lattice.width), np.nan, dtype=np.float64
            )
            for r in range(r_lo, r_hi + 1):
                row = self._src_rows.get(r)
                if row is not None:
                    # Rows may be partial windows of the frame (e.g. after
                    # a spatial restriction): paste at the column offset.
                    c0 = row.col0
                    stack[r - r_lo, c0 : c0 + row.lattice.width] = row.values[0].astype(
                        np.float64
                    )
            out = sample(
                self.method,
                stack,
                nav.rows[j] - r_lo,
                nav.cols[j],
                fill=self.fill,
            ).reshape(1, -1)
        frame_id = self._frame_id if self._frame_id is not None else 0
        return GridChunk(
            values=out.astype(np.float32),
            lattice=nav.dst_lattice.row_lattice(j),
            band=band,
            t=t,
            sector=sector,
            frame=FrameInfo(frame_id, nav.dst_lattice),
            row0=j,
            col0=0,
            last_in_frame=(j == nav.dst_lattice.height - 1),
        )

    # -- operator hooks -----------------------------------------------------------

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            # Point streams re-project pointwise: no buffering at all.
            nx, ny = transform_points(chunk.crs, self.dst_crs, chunk.x, chunk.y)
            keep = np.isfinite(nx) & np.isfinite(ny)
            moved = PointChunk(
                x=nx[keep],
                y=ny[keep],
                values=np.asarray(chunk.values)[keep],
                band=chunk.band,
                t=chunk.t[keep],
                crs=self.dst_crs,
                sector=chunk.sector,
            )
            if moved.n_points:
                yield moved
            return

        if chunk.values.ndim != 2:
            raise OperatorError("re-projection of vector-valued streams is not supported")
        frame_id = chunk.frame.frame_id if chunk.frame is not None else None
        if self._nav is not None and frame_id != self._frame_id:
            yield from self._emit_ready(force=True)
        if self._nav is None:
            self._begin_frame(chunk)
        self._meta = (chunk.band, chunk.t, chunk.sector)
        self._store_rows(chunk)
        yield from self._emit_ready(force=chunk.last_in_frame)

    def _flush(self) -> Iterable[Chunk]:
        if self._nav is not None:
            yield from self._emit_ready(force=True)

    # -- columnar kernel ---------------------------------------------------------

    def _begin_frame_columnar(self, chunk: GridChunk) -> None:
        if chunk.frame is not None:
            src_lattice = chunk.frame.lattice
            self._frame_id = chunk.frame.frame_id
        elif chunk.last_in_frame and chunk.row0 == 0:
            src_lattice = chunk.lattice
            self._frame_id = None
        else:
            raise BlockingHazardError(
                "re-projection needs scan-sector metadata (FrameInfo) or an "
                "explicit output lattice; without knowing the frame extent the "
                "operator could block forever (Section 3.2)"
            )
        nav = self._nav_cache.get(src_lattice)
        if nav is None:
            nav = _FrameReprojection(
                src_lattice, self._derive_dst_lattice(src_lattice), self._footprint
            )
            self._nav_cache[src_lattice] = nav
        nav.next_out = 0
        self._nav = nav
        shape = (src_lattice.height, src_lattice.width)
        if self._canvas is None or (self._canvas.height, self._canvas.width) != shape:
            self._canvas = RollingCanvas(*shape)
        else:
            self._canvas.reset()

    def _dst_row_lattice(self, dst_lattice: GridLattice, j: int) -> GridLattice:
        rows = self._dst_row_cache.setdefault(dst_lattice, {})
        lattice = rows.get(j)
        if lattice is None:
            lattice = dst_lattice.row_lattice(j)
            rows[j] = lattice
        return lattice

    def _materialize_rows(
        self,
        j0: int,
        j1: int,
        metas: "list[tuple[str, float, int | None]] | None",
    ) -> Iterable[GridChunk]:
        """Build output rows ``j0..j1-1``, sampling non-fill runs in batches.

        ``metas`` gives each row's (band, t, sector) — None means every
        row carries ``self._meta``. Sampling a run of rows from one canvas
        window covering the union of their source bands is bit-identical
        to per-row windows: window bounds are integers, so fractional
        coordinates are unchanged, and a row's samples only leave its own
        band where that band was clamped at a frame edge — where the
        union window is clamped to the very same edge, making the index
        clips and the outside-fill mask resolve identically. Evicted rows
        are always strictly below every pending row's band, and rows the
        run never delivered are NaN in the canvas, as in the oracle stack.
        """
        nav = self._nav
        canvas = self._canvas
        assert nav is not None and canvas is not None
        dst = nav.dst_lattice
        frame_id = self._frame_id if self._frame_id is not None else 0
        frame = FrameInfo(frame_id, dst)
        h_last = dst.height - 1
        w_out = dst.width
        row_min, row_max = nav.row_min, nav.row_max
        row_cache = self._dst_row_cache.setdefault(dst, {})
        j = j0
        while j < j1:
            band, t, sector = self._meta if metas is None else metas[j - j0]
            if row_max[j] < row_min[j]:
                # Output row entirely outside the source frame: pure fill.
                out = np.full((1, w_out), self.fill, dtype=np.float64)
                lattice = row_cache.get(j)
                if lattice is None:
                    lattice = row_cache[j] = dst.row_lattice(j)
                yield fast_grid_chunk(
                    out.astype(np.float32),
                    lattice,
                    band,
                    t,
                    sector=sector,
                    frame=frame,
                    row0=j,
                    col0=0,
                    last_in_frame=(j == h_last),
                )
                j += 1
                continue
            jr = j + 1
            while jr < j1 and row_max[jr] >= row_min[jr]:
                jr += 1
            r_lo = int(row_min[j:jr].min())
            r_hi = int(row_max[j:jr].max())
            stack = canvas.rows(r_lo, r_hi + 1)
            sampled = sample(
                self.method,
                stack,
                nav.rows[j:jr] - r_lo,
                nav.cols[j:jr],
                fill=self.fill,
            ).astype(np.float32)
            for offset in range(jr - j):
                jj = j + offset
                band, t, sector = self._meta if metas is None else metas[jj - j0]
                lattice = row_cache.get(jj)
                if lattice is None:
                    lattice = row_cache[jj] = dst.row_lattice(jj)
                yield fast_grid_chunk(
                    sampled[offset : offset + 1],
                    lattice,
                    band,
                    t,
                    sector=sector,
                    frame=frame,
                    row0=jj,
                    col0=0,
                    last_in_frame=(jj == h_last),
                )
            j = jr

    def _evict_below_floor(self) -> None:
        floor = self._nav.needed_floor() if self._nav is not None else 0
        for r in [r for r in self._row_sizes if r < floor]:
            points, nbytes = self._row_sizes.pop(r)
            self.stats.buffer_remove(points, nbytes)

    def _end_frame_columnar(self) -> None:
        for r in list(self._row_sizes):
            points, nbytes = self._row_sizes.pop(r)
            self.stats.buffer_remove(points, nbytes)
        self._nav = None
        self._frame_id = None

    def _emit_ready_columnar(self, force: bool) -> Iterable[GridChunk]:
        nav = self._nav
        assert nav is not None
        watermark = max(self._row_sizes, default=-1)
        h_out = nav.dst_lattice.height
        row_max = nav.row_max
        while nav.next_out < h_out:
            j0 = nav.next_out
            if not force and row_max[j0] > watermark:
                break
            j1 = j0 + 1
            while j1 < h_out and (force or row_max[j1] <= watermark):
                j1 += 1
            yield from self._materialize_rows(j0, j1, None)
            nav.next_out = j1
            # Source rows only leave the buffer during emission, so one
            # eviction sweep after the batch removes exactly the rows the
            # oracle's per-row sweeps would, with the same counter effect.
            self._evict_below_floor()
        if force:
            self._end_frame_columnar()

    def _process_columnar(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            # Already a single vectorized batch; use the oracle path.
            yield from self._process(chunk)
            return
        if chunk.values.ndim != 2:
            raise OperatorError("re-projection of vector-valued streams is not supported")
        frame_id = chunk.frame.frame_id if chunk.frame is not None else None
        if self._nav is not None and frame_id != self._frame_id:
            yield from self._emit_ready_columnar(force=True)
        if self._nav is None:
            self._begin_frame_columnar(chunk)
        self._meta = (chunk.band, chunk.t, chunk.sector)
        canvas = self._canvas
        assert canvas is not None
        values = chunk.values
        width = chunk.lattice.width
        full_width = chunk.col0 == 0 and width == canvas.width
        for local_row in range(chunk.lattice.height):
            abs_row = chunk.row0 + local_row
            old = self._row_sizes.pop(abs_row, None)
            if old is not None:
                self.stats.buffer_remove(old[0], old[1])
            row_values = values[local_row]
            if 0 <= abs_row < canvas.height:
                # Re-clear before pasting so a replacement row leaves no
                # residue outside its own column window (partial rows). A
                # full-width paste overwrites the row anyway — skip it.
                if not full_width:
                    canvas.clear_row(abs_row)
                canvas.paste_row(abs_row, chunk.col0, row_values)
            size = (width, int(row_values.nbytes))
            self._row_sizes[abs_row] = size
            self.stats.buffer_add(width, size[1])
        yield from self._emit_ready_columnar(force=chunk.last_in_frame)

    def process_many(self, chunks: list[Chunk]) -> list[Chunk]:
        """Ingest a frame-run of chunks first, then sample all output rows.

        Per-chunk emission samples one output row at a time as its source
        band completes. Here, for a run of same-frame grid chunks with
        strictly ascending rows, every row is pasted into the canvas and
        the oracle's exact accounting sequence is replayed — note_in,
        buffer adds, readiness checks and eviction sweeps per chunk, which
        also records which chunk's (band, t, sector) each output row is
        tagged with — before one deferred sampling pass materializes all
        pending rows. Deferral cannot change bits: ascending rows never
        overwrite pasted canvas rows, and each output row samples only
        within its own completed source band. Anything irregular
        (replacement rows, frame changes, point streams) falls back to
        the per-chunk kernel.
        """
        if not self.columnar:
            return super().process_many(chunks)
        stats = self.stats
        outs: list[Chunk] = []
        i, n = 0, len(chunks)
        while i < n:
            chunk = chunks[i]
            first_grid = isinstance(chunk, GridChunk) and chunk.values.ndim == 2
            frame_id = (
                chunk.frame.frame_id
                if first_grid and chunk.frame is not None  # type: ignore[union-attr]
                else None
            )
            runnable = (
                first_grid
                and (self._nav is None or frame_id == self._frame_id)
            )
            j = i
            if runnable:
                wm = max(self._row_sizes, default=-1)
                while j < n:
                    c = chunks[j]
                    if not isinstance(c, GridChunk) or c.values.ndim != 2:
                        break
                    fid = c.frame.frame_id if c.frame is not None else None
                    if fid != frame_id or c.row0 <= wm:
                        break
                    wm = c.row0 + c.lattice.height - 1
                    j += 1
                    if c.last_in_frame:
                        break
            if j == i:
                stats.note_in(chunk)
                for out in self._process_columnar(chunk):
                    stats.note_out(out)
                    outs.append(out)
                i += 1
                continue
            run = chunks[i:j]
            i = j
            # -- ingest + replay the oracle's per-chunk accounting --------
            pending: list[tuple[int, int, tuple[str, float, int | None]]] = []
            for c in run:
                stats.note_in(c)
                if self._nav is None:
                    self._begin_frame_columnar(c)
                self._meta = (c.band, c.t, c.sector)
                nav = self._nav
                canvas = self._canvas
                assert nav is not None and canvas is not None
                values = c.values
                width = c.lattice.width
                full_width = c.col0 == 0 and width == canvas.width
                for local_row in range(c.lattice.height):
                    abs_row = c.row0 + local_row
                    row_values = values[local_row]
                    if 0 <= abs_row < canvas.height:
                        if not full_width:
                            canvas.clear_row(abs_row)
                        canvas.paste_row(abs_row, c.col0, row_values)
                    nbytes = int(row_values.nbytes)
                    self._row_sizes[abs_row] = (width, nbytes)
                    stats.buffer_add(width, nbytes)
                # Rows in a run are strictly ascending (checked by the run
                # scan), so the highest buffered row is this chunk's last.
                watermark = c.row0 + c.lattice.height - 1
                force = c.last_in_frame
                h_out = nav.dst_lattice.height
                row_max = nav.row_max
                j0 = nav.next_out
                j1 = j0
                while j1 < h_out and (force or row_max[j1] <= watermark):
                    j1 += 1
                if j1 > j0:
                    pending.append((j0, j1, self._meta))
                    nav.next_out = j1
                    self._evict_below_floor()
            # -- one deferred sampling pass over everything that emitted --
            if pending:
                metas: list[tuple[str, float, int | None]] = []
                for j0, j1, meta in pending:
                    metas.extend([meta] * (j1 - j0))
                for out in self._materialize_rows(
                    pending[0][0], pending[-1][1], metas
                ):
                    stats.note_out(out)
                    outs.append(out)
            if run[-1].last_in_frame:
                self._end_frame_columnar()
        return outs

    def _flush_columnar(self) -> Iterable[Chunk]:
        if self._nav is not None:
            yield from self._emit_ready_columnar(force=True)

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        return dc_replace(
            metadata,
            crs=self.dst_crs,
            value_set=FLOAT32 if not metadata.value_set.is_vector else metadata.value_set,
        )

    def __repr__(self) -> str:
        return f"Reproject(to={self.dst_crs.name!r}, method={self.method!r})"
