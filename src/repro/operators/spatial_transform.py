"""Spatial transforms (Def. 9, Fig. 2a): zoom, resolution change, warp.

Costs mirror the paper's analysis:

* :class:`Magnify` — "an operator that increases the spatial resolution
  would take an incoming point x and produce a rectangular lattice of
  k x k points ... no neighboring points for x are required": zero
  buffering, chunk-at-a-time.
* :class:`Coarsen` — decreasing resolution by 1/k needs "a rectangular
  lattice of k x k neighboring points surrounding x", so a row-organized
  stream buffers a k-row band before each output row can be emitted
  (experiment E3 reads the high-water mark).
* :class:`Rotate` / :class:`AffineWarp` — general affine transforms whose
  output points may depend on arbitrary input points; they buffer a whole
  frame, bounded by the scan-sector metadata on the stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dc_replace
from typing import Callable, Iterable

import numpy as np

from ..core.chunk import Chunk, GridChunk, PointChunk, fast_grid_chunk
from ..core.columnar import BandAccumulator, RollingCanvas
from ..core.lattice import GridLattice
from ..core.metadata import FrameInfo
from ..core.stream import StreamMetadata
from ..core.valueset import FLOAT32
from ..errors import BlockingHazardError, OperatorError
from ..geo.region import BoundingBox
from ..raster.interpolate import block_reduce, sample
from .base import Operator

__all__ = ["Magnify", "Coarsen", "AffineTransform", "AffineWarp", "Rotate"]


class Magnify(Operator):
    """Increase spatial resolution by integer factor k (pixel replication).

    Each input point becomes a k x k block of identical values, exactly as
    the paper describes; no neighbours and no buffering are needed.
    """

    name = "magnify"

    def __init__(self, k: int) -> None:
        super().__init__()
        if k < 1:
            raise OperatorError(f"magnification factor must be >= 1, got {k}")
        self.k = k
        # Content-keyed lattice cache for columnar mode (survives resets:
        # magnified(lattice) is a pure function).
        self._lat_cache: dict[GridLattice, GridLattice] = {}
        # Identity-keyed FrameInfo memo: instruments reuse one FrameInfo
        # object for every row of a frame, so the magnified FrameInfo only
        # needs building once per frame.
        self._fi_in: FrameInfo | None = None
        self._fi_out: FrameInfo | None = None

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError("magnification is defined on grid streams only")
        k = self.k
        if k == 1:
            yield chunk
            return
        values = np.repeat(np.repeat(chunk.values, k, axis=0), k, axis=1)
        frame = chunk.frame
        if frame is not None:
            frame = FrameInfo(frame.frame_id, frame.lattice.magnified(k))
        yield GridChunk(
            values=values,
            lattice=chunk.lattice.magnified(k),
            band=chunk.band,
            t=chunk.t,
            sector=chunk.sector,
            frame=frame,
            row0=chunk.row0 * k,
            col0=chunk.col0 * k,
            last_in_frame=chunk.last_in_frame,
        )

    def _magnified(self, lattice: GridLattice) -> GridLattice:
        out = self._lat_cache.get(lattice)
        if out is None:
            out = lattice.magnified(self.k)
            self._lat_cache[lattice] = out
        return out

    def _magnified_frame(self, frame: FrameInfo) -> FrameInfo:
        if frame is not self._fi_in:
            self._fi_in = frame
            self._fi_out = FrameInfo(frame.frame_id, self._magnified(frame.lattice))
        assert self._fi_out is not None
        return self._fi_out

    def _process_columnar(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError("magnification is defined on grid streams only")
        k = self.k
        if k == 1:
            yield chunk
            return
        values = np.repeat(np.repeat(chunk.values, k, axis=0), k, axis=1)
        frame = chunk.frame
        if frame is not None:
            frame = self._magnified_frame(frame)
        yield fast_grid_chunk(
            values,
            self._magnified(chunk.lattice),
            chunk.band,
            chunk.t,
            sector=chunk.sector,
            frame=frame,
            row0=chunk.row0 * k,
            col0=chunk.col0 * k,
            last_in_frame=chunk.last_in_frame,
        )

    def process_many(self, chunks: list[Chunk]) -> list[Chunk]:
        """Replicate runs of same-shape chunks with two ``np.repeat`` calls.

        ``np.repeat(axis=0)`` on vertically concatenated chunks replicates
        each source row in place, so slicing the result back into
        per-chunk blocks yields exactly the per-chunk kernel's arrays.
        """
        k = self.k
        if not self.columnar or k == 1:
            return super().process_many(chunks)
        stats = self.stats
        outs: list[Chunk] = []
        i, n = 0, len(chunks)
        while i < n:
            chunk = chunks[i]
            if not isinstance(chunk, GridChunk) or chunk.values.ndim != 2:
                stats.note_in(chunk)
                for out in self._process_columnar(chunk):
                    stats.note_out(out)
                    outs.append(out)
                i += 1
                continue
            shape = chunk.values.shape
            dtype = chunk.values.dtype
            j = i + 1
            while j < n:
                nxt = chunks[j]
                if (
                    not isinstance(nxt, GridChunk)
                    or nxt.values.ndim != 2
                    or nxt.values.shape != shape
                    or nxt.values.dtype != dtype
                ):
                    break
                j += 1
            run = chunks[i:j]
            i = j
            h, w = shape
            block = (
                run[0].values
                if len(run) == 1
                else np.concatenate([c.values for c in run])
            )
            big = np.repeat(np.repeat(block, k, axis=0), k, axis=1)
            hk = h * k
            for idx, c in enumerate(run):
                frame = c.frame
                if frame is not None:
                    frame = self._magnified_frame(frame)
                outs.append(
                    fast_grid_chunk(
                        big[idx * hk : (idx + 1) * hk],
                        self._magnified(c.lattice),
                        c.band,
                        c.t,
                        sector=c.sector,
                        frame=frame,
                        row0=c.row0 * k,
                        col0=c.col0 * k,
                        last_in_frame=c.last_in_frame,
                    )
                )
            stats.chunks_in += len(run)
            stats.points_in += len(run) * h * w
            stats.chunks_out += len(run)
            stats.points_out += len(run) * hk * w * k
        return outs

    def __repr__(self) -> str:
        return f"Magnify(k={self.k})"


class Coarsen(Operator):
    """Decrease spatial resolution by 1/k: reduce k x k blocks (Fig. 2a).

    Buffers incoming rows of the current frame until a complete k-row band
    is available, reduces it, and emits one output row — so the buffer
    high-water mark is ~k input rows for a row-by-row stream, and zero
    extra for whole-frame chunks (fast path). Trailing rows/columns not
    filling a block are dropped, matching ``GridLattice.coarsened``.
    """

    name = "coarsen"

    def __init__(self, k: int, reducer: Callable[..., np.ndarray] = np.mean) -> None:
        super().__init__()
        if k < 1:
            raise OperatorError(f"coarsening factor must be >= 1, got {k}")
        self.k = k
        self.reducer = reducer
        self._band: list[GridChunk] = []
        self._band_rows = 0
        self._frame_id: int | None = None
        # Columnar band state: rows are pasted into one contiguous
        # accumulator instead of materialized as per-row chunks. The raw
        # row views are kept alongside so a geometry mismatch (fault-
        # corrupted widths/dtypes) falls back to the oracle's np.vstack
        # and fails in exactly the same way.
        self._col_acc: BandAccumulator | None = None
        self._col_ok = False
        self._col_rows: list[np.ndarray] = []
        self._col_sizes: list[tuple[int, int]] = []
        self._col_first: tuple[GridLattice, int, int, str, int | None, FrameInfo | None] | None = None
        self._col_last_t = 0.0
        # Pure-function lattice caches (survive resets).
        self._coarse_cache: dict[GridLattice, GridLattice] = {}
        # Band-start row lattice -> output band lattice (pure function of
        # the row lattice and k; recurs once per band per frame).
        self._band_out_cache: dict[GridLattice, GridLattice] = {}
        # Identity-keyed FrameInfo memo (one FrameInfo object per frame).
        self._fi_in: FrameInfo | None = None
        self._fi_out: FrameInfo | None = None

    def _reset_state(self) -> None:
        self._band = []
        self._band_rows = 0
        self._frame_id = None
        self._col_ok = False
        self._col_rows = []
        self._col_sizes = []
        self._col_first = None

    def _drop_band(self) -> None:
        for c in self._band:
            self.stats.buffer_remove_chunk(c)
        self._band = []
        self._band_rows = 0

    def _emit_band(self, last: bool) -> GridChunk | None:
        """Reduce the buffered k-row band into one output row chunk.

        Returns None when the band is narrower than one block: every
        output row would be zero-width, so the whole frame coarsens to
        nothing (trailing columns not filling a block are dropped).
        """
        k = self.k
        stack = np.vstack([c.values for c in self._band])
        first = self._band[0]
        width = stack.shape[1]
        if width < k:
            self._drop_band()
            return None
        reduced = block_reduce(stack.astype(np.float64), k, self.reducer)
        out_lattice = first.lattice.window(0, 0, k, width).coarsened(k)
        frame = first.frame
        out_frame = None
        out_row0 = first.row0 // k
        if frame is not None:
            out_frame = FrameInfo(frame.frame_id, frame.lattice.coarsened(k))
        chunk = GridChunk(
            values=reduced.astype(np.float32),
            lattice=out_lattice,
            band=first.band,
            t=self._band[-1].t,
            sector=first.sector,
            frame=out_frame,
            row0=out_row0,
            col0=first.col0 // k,
            last_in_frame=last,
        )
        self._drop_band()
        return chunk

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError("coarsening is defined on grid streams only")
        k = self.k
        if k == 1:
            yield chunk
            return
        frame_id = chunk.frame.frame_id if chunk.frame is not None else None
        if self._band and frame_id != self._frame_id:
            # Frame changed with an incomplete band: the trailing rows do
            # not fill a block and are dropped.
            self._drop_band()
        self._frame_id = frame_id

        # Fast path: a whole-frame chunk reduces directly, no buffering.
        if (
            not self._band
            and chunk.last_in_frame
            and chunk.row0 == 0
            and chunk.lattice.height >= k
            and chunk.lattice.width >= k
        ):
            reduced = block_reduce(chunk.values.astype(np.float64), k, self.reducer)
            frame = chunk.frame
            out_frame = FrameInfo(frame.frame_id, frame.lattice.coarsened(k)) if frame else None
            yield GridChunk(
                values=reduced.astype(np.float32),
                lattice=chunk.lattice.coarsened(k),
                band=chunk.band,
                t=chunk.t,
                sector=chunk.sector,
                frame=out_frame,
                row0=0,
                col0=chunk.col0 // k,
                last_in_frame=True,
            )
            return

        # Row-accumulation path: split multi-row chunks into rows so bands
        # always align to k-row boundaries.
        for local_row in range(chunk.lattice.height):
            row = chunk.subwindow(local_row, 0, 1, chunk.lattice.width)
            is_input_last = chunk.last_in_frame and local_row == chunk.lattice.height - 1
            self._band.append(row)
            self.stats.buffer_add_chunk(row)
            self._band_rows += 1
            if self._band_rows == k:
                out = self._emit_band(last=is_input_last)
                if out is not None:
                    yield out
            elif is_input_last:
                self._drop_band()  # incomplete trailing band

    def _flush(self) -> Iterable[Chunk]:
        self._drop_band()
        return ()

    # -- columnar kernel ---------------------------------------------------------

    def _coarsened(self, lattice: GridLattice) -> GridLattice:
        out = self._coarse_cache.get(lattice)
        if out is None:
            out = lattice.coarsened(self.k)
            self._coarse_cache[lattice] = out
        return out

    def _band_out(self, row_lattice: GridLattice) -> GridLattice:
        out = self._band_out_cache.get(row_lattice)
        if out is None:
            out = row_lattice.window(0, 0, self.k, row_lattice.width).coarsened(self.k)
            self._band_out_cache[row_lattice] = out
        return out

    def _coarsened_frame(self, frame: FrameInfo) -> FrameInfo:
        if frame is not self._fi_in:
            self._fi_in = frame
            self._fi_out = FrameInfo(frame.frame_id, self._coarsened(frame.lattice))
        assert self._fi_out is not None
        return self._fi_out

    def _drop_col_band(self) -> None:
        for points, nbytes in self._col_sizes:
            self.stats.buffer_remove(points, nbytes)
        self._col_rows = []
        self._col_sizes = []
        self._col_first = None
        self._col_ok = False

    def _emit_col_band(self, last: bool) -> GridChunk | None:
        k = self.k
        assert self._col_first is not None
        first_lattice, first_row0, first_col0, band, sector, frame = self._col_first
        if self._col_ok and self._col_acc is not None:
            stack = self._col_acc.stack()
        else:
            stack = np.vstack(self._col_rows)
        width = stack.shape[1]
        if width < k:
            # Same narrower-than-one-block drop as the oracle's _emit_band.
            self._drop_col_band()
            return None
        reduced = block_reduce(stack.astype(np.float64), k, self.reducer)
        if width == first_lattice.width:
            out_lattice = self._band_out(first_lattice)
        else:
            out_lattice = first_lattice.window(0, 0, k, width).coarsened(k)
        out_frame = None
        if frame is not None:
            out_frame = self._coarsened_frame(frame)
        chunk = fast_grid_chunk(
            reduced.astype(np.float32),
            out_lattice,
            band,
            self._col_last_t,
            sector=sector,
            frame=out_frame,
            row0=first_row0 // k,
            col0=first_col0 // k,
            last_in_frame=last,
        )
        self._drop_col_band()
        return chunk

    def _process_columnar(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError("coarsening is defined on grid streams only")
        k = self.k
        if k == 1:
            yield chunk
            return
        frame_id = chunk.frame.frame_id if chunk.frame is not None else None
        if self._col_rows and frame_id != self._frame_id:
            self._drop_col_band()
        self._frame_id = frame_id

        height = chunk.lattice.height
        width = chunk.lattice.width
        if (
            not self._col_rows
            and chunk.last_in_frame
            and chunk.row0 == 0
            and height >= k
            and width >= k
        ):
            reduced = block_reduce(chunk.values.astype(np.float64), k, self.reducer)
            frame = chunk.frame
            out_frame = FrameInfo(frame.frame_id, self._coarsened(frame.lattice)) if frame else None
            yield fast_grid_chunk(
                reduced.astype(np.float32),
                self._coarsened(chunk.lattice),
                chunk.band,
                chunk.t,
                sector=chunk.sector,
                frame=out_frame,
                row0=0,
                col0=chunk.col0 // k,
                last_in_frame=True,
            )
            return

        values = chunk.values
        for local_row in range(height):
            row_values = values[local_row]
            if not self._col_rows:
                self._col_first = (
                    chunk.lattice
                    if height == 1
                    else chunk.lattice.window(local_row, 0, 1, width),
                    chunk.row0 + local_row,
                    chunk.col0,
                    chunk.band,
                    chunk.sector,
                    chunk.frame,
                )
                if self._col_acc is None or not self._col_acc.matches(
                    values.dtype, row_values.shape
                ):
                    self._col_acc = BandAccumulator(values.dtype, k, row_values.shape)
                self._col_ok = True
            is_input_last = chunk.last_in_frame and local_row == height - 1
            if self._col_ok and self._col_acc is not None and self._col_acc.matches(
                values.dtype, row_values.shape
            ):
                self._col_acc.set_row(len(self._col_rows), row_values)
            else:
                self._col_ok = False
            self._col_rows.append(row_values.reshape((1,) + row_values.shape))
            self._col_sizes.append((width, int(row_values.nbytes)))
            self._col_last_t = chunk.t
            self.stats.buffer_add(width, int(row_values.nbytes))
            if len(self._col_rows) == k:
                out = self._emit_col_band(last=is_input_last)
                if out is not None:
                    yield out
            elif is_input_last:
                self._drop_col_band()  # incomplete trailing band

    def process_many(self, chunks: list[Chunk]) -> list[Chunk]:
        """Reduce all complete bands of a single-row run in one call.

        A run of same-frame, same-width single-row chunks covers ``m``
        complete k-row bands; one concatenate + one ``block_reduce`` over
        the whole run produces the same bits as per-band reduction (the
        per-block reduction strides are unchanged), so only chunk
        splitting remains per band. Restricted to ``np.mean`` — a custom
        reducer could in principle depend on the array's outer shape.
        Remainder rows and anything irregular take the per-chunk kernel.
        """
        k = self.k
        if not self.columnar or k == 1 or self.reducer is not np.mean:
            return super().process_many(chunks)
        stats = self.stats
        outs: list[Chunk] = []
        i, n = 0, len(chunks)
        while i < n:
            chunk = chunks[i]
            eligible = (
                not self._col_rows
                and isinstance(chunk, GridChunk)
                and chunk.values.ndim == 2
                and chunk.lattice.height == 1
                and chunk.lattice.width >= k
                and not chunk.last_in_frame
            )
            if eligible:
                frame_id = chunk.frame.frame_id if chunk.frame is not None else None
                width = chunk.lattice.width
                dtype = chunk.values.dtype
                j = i + 1
                while j < n:
                    nxt = chunks[j]
                    if (
                        not isinstance(nxt, GridChunk)
                        or nxt.values.ndim != 2
                        or nxt.lattice.height != 1
                        or nxt.lattice.width != width
                        or nxt.values.dtype != dtype
                        or (nxt.frame.frame_id if nxt.frame is not None else None)
                        != frame_id
                    ):
                        break
                    j += 1
                    if nxt.last_in_frame:
                        break
                m = (j - i) // k
            else:
                m = 0
            if m == 0:
                stats.note_in(chunk)
                for out in self._process_columnar(chunk):
                    stats.note_out(out)
                    outs.append(out)
                i += 1
                continue
            run = chunks[i : i + m * k]
            i += m * k
            block = np.concatenate([c.values for c in run])
            reduced = block_reduce(block.astype(np.float64), k, self.reducer).astype(
                np.float32
            )
            # Counter effect of the per-row sequence: each band adds k rows
            # then removes them, so buffered levels return to base and the
            # high-water mark rises by at most one band.
            row_nbytes = int(run[0].values.nbytes)
            stats.max_buffered_points = max(
                stats.max_buffered_points, stats.buffered_points + k * width
            )
            stats.max_buffered_bytes = max(
                stats.max_buffered_bytes, stats.buffered_bytes + k * row_nbytes
            )
            stats.chunks_in += m * k
            stats.points_in += m * k * width
            for b in range(m):
                first = run[b * k]
                frame = first.frame
                outs.append(
                    fast_grid_chunk(
                        reduced[b : b + 1],
                        self._band_out(first.lattice),
                        first.band,
                        run[b * k + k - 1].t,
                        sector=first.sector,
                        frame=self._coarsened_frame(frame) if frame is not None else None,
                        row0=first.row0 // k,
                        col0=first.col0 // k,
                        last_in_frame=run[b * k + k - 1].last_in_frame,
                    )
                )
            self._frame_id = frame_id
            stats.chunks_out += m
            stats.points_out += m * (width // k)
        return outs

    def _flush_columnar(self) -> Iterable[Chunk]:
        self._drop_col_band()
        return ()

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        shape = metadata.max_frame_shape
        if shape is not None:
            shape = (shape[0] // self.k, shape[1] // self.k)
        return dc_replace(metadata, value_set=FLOAT32, max_frame_shape=shape)

    def __repr__(self) -> str:
        return f"Coarsen(k={self.k})"


@dataclass(frozen=True)
class AffineTransform:
    """2-D affine map (x, y) -> (a x + b y + c, d x + e y + f)."""

    a: float
    b: float
    c: float
    d: float
    e: float
    f: float

    def apply(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.a * x + self.b * y + self.c, self.d * x + self.e * y + self.f

    def inverse(self) -> "AffineTransform":
        det = self.a * self.e - self.b * self.d
        if abs(det) < 1e-15:
            raise OperatorError("affine transform is singular and cannot be inverted")
        ia, ib = self.e / det, -self.b / det
        id_, ie = -self.d / det, self.a / det
        return AffineTransform(
            ia, ib, -(ia * self.c + ib * self.f),
            id_, ie, -(id_ * self.c + ie * self.f),
        )

    @staticmethod
    def rotation(angle_deg: float, cx: float = 0.0, cy: float = 0.0) -> "AffineTransform":
        """Rotation by ``angle_deg`` counterclockwise about (cx, cy)."""
        th = math.radians(angle_deg)
        cos_t, sin_t = math.cos(th), math.sin(th)
        return AffineTransform(
            cos_t, -sin_t, cx - cos_t * cx + sin_t * cy,
            sin_t, cos_t, cy - sin_t * cx - cos_t * cy,
        )

    @staticmethod
    def identity() -> "AffineTransform":
        return AffineTransform(1.0, 0.0, 0.0, 0.0, 1.0, 0.0)


class _FrameWarp(Operator):
    """Shared machinery: buffer a frame, then warp it as one image."""

    def __init__(self, method: str = "bilinear", fill: float = np.nan) -> None:
        super().__init__()
        self.method = method
        self.fill = fill
        self._pending: list[GridChunk] = []
        self._frame_id: int | None = None
        # Columnar mode: warp geometry (output lattice + fractional source
        # indices) is a pure function of the frame lattice, cached across
        # frames and resets; the paste canvas is reused between frames.
        self._warp_cache: dict[GridLattice, tuple[GridLattice, np.ndarray, np.ndarray]] = {}
        self._canvas: RollingCanvas | None = None

    def _reset_state(self) -> None:
        self._pending = []
        self._frame_id = None

    def _frame_affine(self, lattice: GridLattice) -> AffineTransform:
        raise NotImplementedError

    def _emit(self) -> Iterable[Chunk]:
        if not self._pending:
            return
        first = self._pending[0]
        if first.frame is not None:
            frame_lattice = first.frame.lattice
        elif len(self._pending) == 1 and first.last_in_frame:
            frame_lattice = first.lattice
        else:
            raise BlockingHazardError(
                "frame warp needs scan-sector metadata (FrameInfo) to know the "
                "frame extent; without it the operator could block forever "
                "(Section 3.2)"
            )
        canvas = np.full(frame_lattice.shape, np.nan, dtype=np.float64)
        for c in self._pending:
            canvas[c.row0 : c.row0 + c.lattice.height, c.col0 : c.col0 + c.lattice.width] = (
                c.values.astype(np.float64)
            )

        affine = self._frame_affine(frame_lattice)
        inverse = affine.inverse()
        # Output lattice: same resolution, covering the warped extent.
        corners = frame_lattice.bbox.corners()
        wx, wy = affine.apply(corners[:, 0], corners[:, 1])
        out_bbox = BoundingBox.from_points(wx, wy, frame_lattice.crs)
        out_lattice = GridLattice.from_bbox(
            out_bbox, frame_lattice.dx, frame_lattice.dy, frame_lattice.crs
        )
        ox, oy = out_lattice.meshgrid()
        sx, sy = inverse.apply(ox, oy)
        rows = frame_lattice.fractional_row(sy)
        cols = frame_lattice.fractional_col(sx)
        warped = sample(self.method, canvas, rows, cols, fill=self.fill)

        frame_id = self._pending[0].frame.frame_id if self._pending[0].frame else 0
        out = GridChunk(
            values=warped.astype(np.float32),
            lattice=out_lattice,
            band=first.band,
            t=self._pending[-1].t,
            sector=first.sector,
            frame=FrameInfo(frame_id, out_lattice),
            row0=0,
            col0=0,
            last_in_frame=True,
        )
        for c in self._pending:
            self.stats.buffer_remove_chunk(c)
        self._pending = []
        self._frame_id = None
        yield out

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError("frame warps are defined on grid streams only")
        frame_id = chunk.frame.frame_id if chunk.frame is not None else None
        if self._pending and frame_id != self._frame_id:
            yield from self._emit()
        self._pending.append(chunk)
        self._frame_id = frame_id
        self.stats.buffer_add_chunk(chunk)
        if chunk.last_in_frame:
            yield from self._emit()

    def _flush(self) -> Iterable[Chunk]:
        yield from self._emit()

    # -- columnar kernel ---------------------------------------------------------

    def _warp_geometry(self, frame_lattice: GridLattice) -> tuple[GridLattice, np.ndarray, np.ndarray]:
        entry = self._warp_cache.get(frame_lattice)
        if entry is None:
            affine = self._frame_affine(frame_lattice)
            inverse = affine.inverse()
            corners = frame_lattice.bbox.corners()
            wx, wy = affine.apply(corners[:, 0], corners[:, 1])
            out_bbox = BoundingBox.from_points(wx, wy, frame_lattice.crs)
            out_lattice = GridLattice.from_bbox(
                out_bbox, frame_lattice.dx, frame_lattice.dy, frame_lattice.crs
            )
            ox, oy = out_lattice.meshgrid()
            sx, sy = inverse.apply(ox, oy)
            entry = (
                out_lattice,
                frame_lattice.fractional_row(sy),
                frame_lattice.fractional_col(sx),
            )
            self._warp_cache[frame_lattice] = entry
        return entry

    def _emit_columnar(self) -> Iterable[Chunk]:
        if not self._pending:
            return
        first = self._pending[0]
        if first.frame is not None:
            frame_lattice = first.frame.lattice
        elif len(self._pending) == 1 and first.last_in_frame:
            frame_lattice = first.lattice
        else:
            raise BlockingHazardError(
                "frame warp needs scan-sector metadata (FrameInfo) to know the "
                "frame extent; without it the operator could block forever "
                "(Section 3.2)"
            )
        height, width = frame_lattice.shape
        if self._canvas is None or (self._canvas.height, self._canvas.width) != (height, width):
            self._canvas = RollingCanvas(height, width)
        else:
            self._canvas.reset()
        canvas = self._canvas.grid()
        for c in self._pending:
            canvas[c.row0 : c.row0 + c.lattice.height, c.col0 : c.col0 + c.lattice.width] = (
                c.values
            )

        out_lattice, rows, cols = self._warp_geometry(frame_lattice)
        warped = sample(self.method, canvas, rows, cols, fill=self.fill)

        frame_id = self._pending[0].frame.frame_id if self._pending[0].frame else 0
        out = fast_grid_chunk(
            warped.astype(np.float32),
            out_lattice,
            first.band,
            self._pending[-1].t,
            sector=first.sector,
            frame=FrameInfo(frame_id, out_lattice),
            row0=0,
            col0=0,
            last_in_frame=True,
        )
        for c in self._pending:
            self.stats.buffer_remove_chunk(c)
        self._pending = []
        self._frame_id = None
        yield out

    def _process_columnar(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError("frame warps are defined on grid streams only")
        frame_id = chunk.frame.frame_id if chunk.frame is not None else None
        if self._pending and frame_id != self._frame_id:
            yield from self._emit_columnar()
        self._pending.append(chunk)
        self._frame_id = frame_id
        self.stats.buffer_add_chunk(chunk)
        if chunk.last_in_frame:
            yield from self._emit_columnar()

    def _flush_columnar(self) -> Iterable[Chunk]:
        yield from self._emit_columnar()

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        return dc_replace(metadata, value_set=FLOAT32)


class AffineWarp(_FrameWarp):
    """Apply a fixed affine transform to every frame's point lattice."""

    name = "affine-warp"

    def __init__(
        self,
        affine: AffineTransform,
        method: str = "bilinear",
        fill: float = np.nan,
    ) -> None:
        super().__init__(method=method, fill=fill)
        self.affine = affine

    def _frame_affine(self, lattice: GridLattice) -> AffineTransform:
        return self.affine

    def __repr__(self) -> str:
        return f"AffineWarp({self.affine})"


class Rotate(_FrameWarp):
    """Rotate each frame about its own center (a classic GIS transform)."""

    name = "rotate"

    def __init__(
        self,
        angle_deg: float,
        method: str = "bilinear",
        fill: float = np.nan,
    ) -> None:
        super().__init__(method=method, fill=fill)
        self.angle_deg = angle_deg

    def _frame_affine(self, lattice: GridLattice) -> AffineTransform:
        cx, cy = lattice.bbox.center
        # Normalize so exact multiples of 360 are exact identities rather
        # than near-identities that perturb the output lattice extent.
        return AffineTransform.rotation(self.angle_deg % 360.0, cx, cy)

    def __repr__(self) -> str:
        return f"Rotate({self.angle_deg:g} deg)"
