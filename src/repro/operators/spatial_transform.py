"""Spatial transforms (Def. 9, Fig. 2a): zoom, resolution change, warp.

Costs mirror the paper's analysis:

* :class:`Magnify` — "an operator that increases the spatial resolution
  would take an incoming point x and produce a rectangular lattice of
  k x k points ... no neighboring points for x are required": zero
  buffering, chunk-at-a-time.
* :class:`Coarsen` — decreasing resolution by 1/k needs "a rectangular
  lattice of k x k neighboring points surrounding x", so a row-organized
  stream buffers a k-row band before each output row can be emitted
  (experiment E3 reads the high-water mark).
* :class:`Rotate` / :class:`AffineWarp` — general affine transforms whose
  output points may depend on arbitrary input points; they buffer a whole
  frame, bounded by the scan-sector metadata on the stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dc_replace
from typing import Callable, Iterable

import numpy as np

from ..core.chunk import Chunk, GridChunk, PointChunk
from ..core.lattice import GridLattice
from ..core.metadata import FrameInfo
from ..core.stream import StreamMetadata
from ..core.valueset import FLOAT32
from ..errors import BlockingHazardError, OperatorError
from ..geo.region import BoundingBox
from ..raster.interpolate import block_reduce, sample
from .base import Operator

__all__ = ["Magnify", "Coarsen", "AffineTransform", "AffineWarp", "Rotate"]


class Magnify(Operator):
    """Increase spatial resolution by integer factor k (pixel replication).

    Each input point becomes a k x k block of identical values, exactly as
    the paper describes; no neighbours and no buffering are needed.
    """

    name = "magnify"

    def __init__(self, k: int) -> None:
        super().__init__()
        if k < 1:
            raise OperatorError(f"magnification factor must be >= 1, got {k}")
        self.k = k

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError("magnification is defined on grid streams only")
        k = self.k
        if k == 1:
            yield chunk
            return
        values = np.repeat(np.repeat(chunk.values, k, axis=0), k, axis=1)
        frame = chunk.frame
        if frame is not None:
            frame = FrameInfo(frame.frame_id, frame.lattice.magnified(k))
        yield GridChunk(
            values=values,
            lattice=chunk.lattice.magnified(k),
            band=chunk.band,
            t=chunk.t,
            sector=chunk.sector,
            frame=frame,
            row0=chunk.row0 * k,
            col0=chunk.col0 * k,
            last_in_frame=chunk.last_in_frame,
        )

    def __repr__(self) -> str:
        return f"Magnify(k={self.k})"


class Coarsen(Operator):
    """Decrease spatial resolution by 1/k: reduce k x k blocks (Fig. 2a).

    Buffers incoming rows of the current frame until a complete k-row band
    is available, reduces it, and emits one output row — so the buffer
    high-water mark is ~k input rows for a row-by-row stream, and zero
    extra for whole-frame chunks (fast path). Trailing rows/columns not
    filling a block are dropped, matching ``GridLattice.coarsened``.
    """

    name = "coarsen"

    def __init__(self, k: int, reducer: Callable[..., np.ndarray] = np.mean) -> None:
        super().__init__()
        if k < 1:
            raise OperatorError(f"coarsening factor must be >= 1, got {k}")
        self.k = k
        self.reducer = reducer
        self._band: list[GridChunk] = []
        self._band_rows = 0
        self._frame_id: int | None = None

    def _reset_state(self) -> None:
        self._band = []
        self._band_rows = 0
        self._frame_id = None

    def _drop_band(self) -> None:
        for c in self._band:
            self.stats.buffer_remove_chunk(c)
        self._band = []
        self._band_rows = 0

    def _emit_band(self, last: bool) -> GridChunk:
        """Reduce the buffered k-row band into one output row chunk."""
        k = self.k
        stack = np.vstack([c.values for c in self._band])
        first = self._band[0]
        width = stack.shape[1]
        reduced = block_reduce(stack.astype(np.float64), k, self.reducer)
        out_lattice = first.lattice.window(0, 0, k, width).coarsened(k)
        frame = first.frame
        out_frame = None
        out_row0 = first.row0 // k
        if frame is not None:
            out_frame = FrameInfo(frame.frame_id, frame.lattice.coarsened(k))
        chunk = GridChunk(
            values=reduced.astype(np.float32),
            lattice=out_lattice,
            band=first.band,
            t=self._band[-1].t,
            sector=first.sector,
            frame=out_frame,
            row0=out_row0,
            col0=first.col0 // k,
            last_in_frame=last,
        )
        self._drop_band()
        return chunk

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError("coarsening is defined on grid streams only")
        k = self.k
        if k == 1:
            yield chunk
            return
        frame_id = chunk.frame.frame_id if chunk.frame is not None else None
        if self._band and frame_id != self._frame_id:
            # Frame changed with an incomplete band: the trailing rows do
            # not fill a block and are dropped.
            self._drop_band()
        self._frame_id = frame_id

        # Fast path: a whole-frame chunk reduces directly, no buffering.
        if (
            not self._band
            and chunk.last_in_frame
            and chunk.row0 == 0
            and chunk.lattice.height >= k
            and chunk.lattice.width >= k
        ):
            reduced = block_reduce(chunk.values.astype(np.float64), k, self.reducer)
            frame = chunk.frame
            out_frame = FrameInfo(frame.frame_id, frame.lattice.coarsened(k)) if frame else None
            yield GridChunk(
                values=reduced.astype(np.float32),
                lattice=chunk.lattice.coarsened(k),
                band=chunk.band,
                t=chunk.t,
                sector=chunk.sector,
                frame=out_frame,
                row0=0,
                col0=chunk.col0 // k,
                last_in_frame=True,
            )
            return

        # Row-accumulation path: split multi-row chunks into rows so bands
        # always align to k-row boundaries.
        for local_row in range(chunk.lattice.height):
            row = chunk.subwindow(local_row, 0, 1, chunk.lattice.width)
            is_input_last = chunk.last_in_frame and local_row == chunk.lattice.height - 1
            self._band.append(row)
            self.stats.buffer_add_chunk(row)
            self._band_rows += 1
            if self._band_rows == k:
                yield self._emit_band(last=is_input_last)
            elif is_input_last:
                self._drop_band()  # incomplete trailing band

    def _flush(self) -> Iterable[Chunk]:
        self._drop_band()
        return ()

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        shape = metadata.max_frame_shape
        if shape is not None:
            shape = (shape[0] // self.k, shape[1] // self.k)
        return dc_replace(metadata, value_set=FLOAT32, max_frame_shape=shape)

    def __repr__(self) -> str:
        return f"Coarsen(k={self.k})"


@dataclass(frozen=True)
class AffineTransform:
    """2-D affine map (x, y) -> (a x + b y + c, d x + e y + f)."""

    a: float
    b: float
    c: float
    d: float
    e: float
    f: float

    def apply(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.a * x + self.b * y + self.c, self.d * x + self.e * y + self.f

    def inverse(self) -> "AffineTransform":
        det = self.a * self.e - self.b * self.d
        if abs(det) < 1e-15:
            raise OperatorError("affine transform is singular and cannot be inverted")
        ia, ib = self.e / det, -self.b / det
        id_, ie = -self.d / det, self.a / det
        return AffineTransform(
            ia, ib, -(ia * self.c + ib * self.f),
            id_, ie, -(id_ * self.c + ie * self.f),
        )

    @staticmethod
    def rotation(angle_deg: float, cx: float = 0.0, cy: float = 0.0) -> "AffineTransform":
        """Rotation by ``angle_deg`` counterclockwise about (cx, cy)."""
        th = math.radians(angle_deg)
        cos_t, sin_t = math.cos(th), math.sin(th)
        return AffineTransform(
            cos_t, -sin_t, cx - cos_t * cx + sin_t * cy,
            sin_t, cos_t, cy - sin_t * cx - cos_t * cy,
        )

    @staticmethod
    def identity() -> "AffineTransform":
        return AffineTransform(1.0, 0.0, 0.0, 0.0, 1.0, 0.0)


class _FrameWarp(Operator):
    """Shared machinery: buffer a frame, then warp it as one image."""

    def __init__(self, method: str = "bilinear", fill: float = np.nan) -> None:
        super().__init__()
        self.method = method
        self.fill = fill
        self._pending: list[GridChunk] = []
        self._frame_id: int | None = None

    def _reset_state(self) -> None:
        self._pending = []
        self._frame_id = None

    def _frame_affine(self, lattice: GridLattice) -> AffineTransform:
        raise NotImplementedError

    def _emit(self) -> Iterable[Chunk]:
        if not self._pending:
            return
        first = self._pending[0]
        if first.frame is not None:
            frame_lattice = first.frame.lattice
        elif len(self._pending) == 1 and first.last_in_frame:
            frame_lattice = first.lattice
        else:
            raise BlockingHazardError(
                "frame warp needs scan-sector metadata (FrameInfo) to know the "
                "frame extent; without it the operator could block forever "
                "(Section 3.2)"
            )
        canvas = np.full(frame_lattice.shape, np.nan, dtype=np.float64)
        for c in self._pending:
            canvas[c.row0 : c.row0 + c.lattice.height, c.col0 : c.col0 + c.lattice.width] = (
                c.values.astype(np.float64)
            )

        affine = self._frame_affine(frame_lattice)
        inverse = affine.inverse()
        # Output lattice: same resolution, covering the warped extent.
        corners = frame_lattice.bbox.corners()
        wx, wy = affine.apply(corners[:, 0], corners[:, 1])
        out_bbox = BoundingBox.from_points(wx, wy, frame_lattice.crs)
        out_lattice = GridLattice.from_bbox(
            out_bbox, frame_lattice.dx, frame_lattice.dy, frame_lattice.crs
        )
        ox, oy = out_lattice.meshgrid()
        sx, sy = inverse.apply(ox, oy)
        rows = frame_lattice.fractional_row(sy)
        cols = frame_lattice.fractional_col(sx)
        warped = sample(self.method, canvas, rows, cols, fill=self.fill)

        frame_id = self._pending[0].frame.frame_id if self._pending[0].frame else 0
        out = GridChunk(
            values=warped.astype(np.float32),
            lattice=out_lattice,
            band=first.band,
            t=self._pending[-1].t,
            sector=first.sector,
            frame=FrameInfo(frame_id, out_lattice),
            row0=0,
            col0=0,
            last_in_frame=True,
        )
        for c in self._pending:
            self.stats.buffer_remove_chunk(c)
        self._pending = []
        self._frame_id = None
        yield out

    def _process(self, chunk: Chunk) -> Iterable[Chunk]:
        if isinstance(chunk, PointChunk):
            raise OperatorError("frame warps are defined on grid streams only")
        frame_id = chunk.frame.frame_id if chunk.frame is not None else None
        if self._pending and frame_id != self._frame_id:
            yield from self._emit()
        self._pending.append(chunk)
        self._frame_id = frame_id
        self.stats.buffer_add_chunk(chunk)
        if chunk.last_in_frame:
            yield from self._emit()

    def _flush(self) -> Iterable[Chunk]:
        yield from self._emit()

    def output_metadata(self, metadata: StreamMetadata) -> StreamMetadata:
        return dc_replace(metadata, value_set=FLOAT32)


class AffineWarp(_FrameWarp):
    """Apply a fixed affine transform to every frame's point lattice."""

    name = "affine-warp"

    def __init__(
        self,
        affine: AffineTransform,
        method: str = "bilinear",
        fill: float = np.nan,
    ) -> None:
        super().__init__(method=method, fill=fill)
        self.affine = affine

    def _frame_affine(self, lattice: GridLattice) -> AffineTransform:
        return self.affine

    def __repr__(self) -> str:
        return f"AffineWarp({self.affine})"


class Rotate(_FrameWarp):
    """Rotate each frame about its own center (a classic GIS transform)."""

    name = "rotate"

    def __init__(
        self,
        angle_deg: float,
        method: str = "bilinear",
        fill: float = np.nan,
    ) -> None:
        super().__init__(method=method, fill=fill)
        self.angle_deg = angle_deg

    def _frame_affine(self, lattice: GridLattice) -> AffineTransform:
        cx, cy = lattice.bbox.center
        # Normalize so exact multiples of 360 are exact identities rather
        # than near-identities that perturb the output lattice extent.
        return AffineTransform.rotation(self.angle_deg % 360.0, cx, cy)

    def __repr__(self) -> str:
        return f"Rotate({self.angle_deg:g} deg)"
