"""Legacy setup shim.

The offline target environment lacks the ``wheel`` package, which breaks
PEP 517 editable installs; this shim lets ``pip install -e .`` use the
legacy setuptools path. All metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
    python_requires=">=3.10",
    entry_points={"console_scripts": ["geostreams=repro.cli:main"]},
)
