"""Smoke tests: every example script runs end to end.

Examples are documentation; these tests keep them from rotting. Each
example's ``main()`` is executed in-process with its output directory
redirected into a tmp dir.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "ndvi_monitoring",
    "dsms_server_demo",
    "wildfire_watch",
    "instrument_zoo",
    "archive_replay",
    "two_satellite_mosaic",
    "chaos_run",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, tmp_path, capsys, monkeypatch):
    module = load_example(name)
    if hasattr(module, "OUTPUT_DIR"):
        monkeypatch.setattr(module, "OUTPUT_DIR", tmp_path)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"


def test_quickstart_writes_pngs(tmp_path, monkeypatch, capsys):
    module = load_example("quickstart")
    monkeypatch.setattr(module, "OUTPUT_DIR", tmp_path)
    module.main()
    pngs = list(tmp_path.glob("*.png"))
    assert len(pngs) == 4
    assert all(p.read_bytes().startswith(b"\x89PNG") for p in pngs)


def test_wildfire_watch_raises_alert(capsys):
    module = load_example("wildfire_watch")
    module.main()
    out = capsys.readouterr().out
    assert "ALERT" in out


def test_instrument_zoo_reports_all_three(capsys):
    module = load_example("instrument_zoo")
    module.main()
    out = capsys.readouterr().out
    for org in ("image-by-image", "row-by-row", "point-by-point"):
        assert org in out
