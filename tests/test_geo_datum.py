"""Tests for ellipsoids and geodetic conversions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import (
    GRS80,
    SPHERE,
    WGS84,
    Ellipsoid,
    ecef_to_geodetic,
    geodetic_to_ecef,
    haversine_m,
)


class TestEllipsoid:
    def test_wgs84_constants(self):
        assert WGS84.a == pytest.approx(6_378_137.0)
        assert WGS84.b == pytest.approx(6_356_752.314245, abs=1e-3)
        assert WGS84.e2 == pytest.approx(0.00669437999014, abs=1e-12)
        assert WGS84.e == pytest.approx(0.0818191908426, abs=1e-10)

    def test_grs80_nearly_wgs84(self):
        assert GRS80.a == WGS84.a
        assert abs(GRS80.b - WGS84.b) < 1e-3

    def test_sphere_has_zero_eccentricity(self):
        assert SPHERE.is_sphere
        assert SPHERE.e2 == 0.0
        assert SPHERE.b == SPHERE.a

    def test_mean_radius(self):
        assert WGS84.mean_radius == pytest.approx((2 * WGS84.a + WGS84.b) / 3)

    def test_distinct_ellipsoids_unequal(self):
        assert WGS84 != GRS80
        assert WGS84 != SPHERE

    def test_custom_ellipsoid_derivations(self):
        e = Ellipsoid("test", 1000.0, 100.0)
        assert e.f == pytest.approx(0.01)
        assert e.b == pytest.approx(990.0)
        assert e.e2 == pytest.approx(0.01 * (2 - 0.01))


class TestECEF:
    def test_equator_prime_meridian(self):
        x, y, z = geodetic_to_ecef(0.0, 0.0, 0.0)
        assert float(x) == pytest.approx(WGS84.a)
        assert float(y) == pytest.approx(0.0, abs=1e-6)
        assert float(z) == pytest.approx(0.0, abs=1e-6)

    def test_north_pole(self):
        x, y, z = geodetic_to_ecef(0.0, 90.0, 0.0)
        assert float(z) == pytest.approx(WGS84.b, abs=1e-3)
        assert float(np.hypot(x, y)) == pytest.approx(0.0, abs=1e-3)

    def test_height_adds_radially(self):
        x0, _, _ = geodetic_to_ecef(0.0, 0.0, 0.0)
        x1, _, _ = geodetic_to_ecef(0.0, 0.0, 1000.0)
        assert float(x1 - x0) == pytest.approx(1000.0)

    @given(
        lon=st.floats(-180.0, 180.0),
        lat=st.floats(-89.0, 89.0),
        h=st.floats(-1000.0, 10000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, lon, lat, h):
        x, y, z = geodetic_to_ecef(lon, lat, h)
        lon2, lat2, h2 = ecef_to_geodetic(x, y, z)
        # Longitude wraps at the antimeridian.
        dlon = (float(lon2) - lon + 180.0) % 360.0 - 180.0
        assert abs(dlon) < 1e-9 or abs(lat) > 89.999
        assert float(lat2) == pytest.approx(lat, abs=1e-9)
        # Bowring's method is accurate to micrometers for terrestrial points.
        assert float(h2) == pytest.approx(h, abs=1e-4)

    def test_sphere_roundtrip(self):
        x, y, z = geodetic_to_ecef(12.0, 34.0, 56.0, ellipsoid=SPHERE)
        lon, lat, h = ecef_to_geodetic(x, y, z, ellipsoid=SPHERE)
        assert float(lon) == pytest.approx(12.0)
        assert float(lat) == pytest.approx(34.0)
        assert float(h) == pytest.approx(56.0, abs=1e-6)

    def test_vectorized(self):
        lons = np.array([0.0, 45.0, -120.0])
        lats = np.array([0.0, 45.0, 37.0])
        x, y, z = geodetic_to_ecef(lons, lats)
        assert x.shape == (3,)
        lon2, lat2, _ = ecef_to_geodetic(x, y, z)
        np.testing.assert_allclose(lon2, lons, atol=1e-9)
        np.testing.assert_allclose(lat2, lats, atol=1e-9)


class TestHaversine:
    def test_zero_distance(self):
        assert float(haversine_m(10.0, 20.0, 10.0, 20.0)) == 0.0

    def test_one_degree_longitude_at_equator(self):
        d = float(haversine_m(0.0, 0.0, 1.0, 0.0))
        expected = math.radians(1.0) * SPHERE.a
        assert d == pytest.approx(expected, rel=1e-9)

    def test_quarter_circumference(self):
        d = float(haversine_m(0.0, 0.0, 0.0, 90.0))
        assert d == pytest.approx(math.pi / 2 * SPHERE.a, rel=1e-9)

    def test_symmetry(self):
        d1 = float(haversine_m(-120.0, 35.0, -80.0, 42.0))
        d2 = float(haversine_m(-80.0, 42.0, -120.0, 35.0))
        assert d1 == pytest.approx(d2)

    def test_latitude_shrinks_longitude_distance(self):
        d_eq = float(haversine_m(0.0, 0.0, 1.0, 0.0))
        d_60 = float(haversine_m(0.0, 60.0, 1.0, 60.0))
        assert d_60 == pytest.approx(d_eq * 0.5, rel=1e-3)
