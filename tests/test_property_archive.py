"""Property-based archive round-trips over generated chunk streams."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    FLOAT32,
    FrameInfo,
    GeoStream,
    GridChunk,
    GridLattice,
    Organization,
    PointChunk,
    StreamMetadata,
)
from repro.geo import LATLON, utm
from repro.io import read_archive, write_archive


def lattice_strategy():
    return st.tuples(
        st.floats(-170.0, 170.0),
        st.floats(-80.0, 80.0),
        st.floats(0.001, 1.0),
        st.integers(1, 12),
        st.integers(1, 12),
    ).map(
        lambda t: GridLattice(
            LATLON, x0=t[0], y0=t[1], dx=t[2], dy=-t[2], width=t[3], height=t[4]
        )
    )


@st.composite
def grid_chunk_strategy(draw):
    lattice = draw(lattice_strategy())
    dtype = draw(st.sampled_from([np.uint8, np.uint16, np.float32, np.float64]))
    values = draw(
        hnp.arrays(
            dtype=dtype,
            shape=lattice.shape,
            elements=st.floats(0, 100, width=16).map(float)
            if np.issubdtype(dtype, np.floating)
            else st.integers(0, 200),
        )
    )
    has_frame = draw(st.booleans())
    frame = FrameInfo(draw(st.integers(0, 5)), lattice) if has_frame else None
    return GridChunk(
        values=values,
        lattice=lattice,
        band=draw(st.sampled_from(["vis", "nir", "tir"])),
        t=draw(st.floats(0, 1e6)),
        sector=draw(st.one_of(st.none(), st.integers(0, 9))),
        frame=frame,
        row0=0,
        col0=0,
        last_in_frame=draw(st.booleans()),
    )


@st.composite
def point_chunk_strategy(draw):
    n = draw(st.integers(1, 30))
    return PointChunk(
        x=np.asarray(draw(st.lists(st.floats(-170, 170), min_size=n, max_size=n))),
        y=np.asarray(draw(st.lists(st.floats(-80, 80), min_size=n, max_size=n))),
        values=np.asarray(
            draw(st.lists(st.floats(0, 1000), min_size=n, max_size=n)), dtype=np.float32
        ),
        band="elev",
        t=np.sort(np.asarray(draw(st.lists(st.floats(0, 1e5), min_size=n, max_size=n)))),
        crs=LATLON,
    )


META = StreamMetadata("prop.stream", "vis", LATLON, Organization.ROW_BY_ROW, FLOAT32)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(chunks=st.lists(grid_chunk_strategy(), min_size=0, max_size=5))
def test_grid_archive_roundtrip(tmp_path_factory, chunks):
    path = tmp_path_factory.mktemp("arch") / "stream.gsar"
    stream = GeoStream.from_chunks(META, chunks)
    assert write_archive(stream, path) == len(chunks)
    replayed = read_archive(path).collect_chunks()
    assert len(replayed) == len(chunks)
    for a, b in zip(chunks, replayed):
        np.testing.assert_array_equal(a.values, b.values)
        assert a.values.dtype == b.values.dtype
        assert a.lattice == b.lattice
        assert a.t == b.t and a.sector == b.sector and a.band == b.band
        assert a.last_in_frame == b.last_in_frame


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(chunks=st.lists(point_chunk_strategy(), min_size=1, max_size=4))
def test_point_archive_roundtrip(tmp_path_factory, chunks):
    meta = StreamMetadata(
        "prop.points", "elev", LATLON, Organization.POINT_BY_POINT, FLOAT32
    )
    path = tmp_path_factory.mktemp("arch") / "points.gsar"
    stream = GeoStream.from_chunks(meta, chunks)
    write_archive(stream, path)
    replayed = read_archive(path).collect_chunks()
    for a, b in zip(chunks, replayed):
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)
        np.testing.assert_array_equal(a.t, b.t)
        np.testing.assert_array_equal(a.values, b.values)


def test_projected_crs_chunks_roundtrip(tmp_path):
    """Lattices in projected CRSs survive via the spec mechanism."""
    lattice = GridLattice(utm(10), 500_000.0, 4_300_000.0, 1000.0, -1000.0, 8, 4)
    chunk = GridChunk(np.ones(lattice.shape, dtype=np.float32), lattice, "b", 1.0)
    meta = StreamMetadata("utm.stream", "b", utm(10), Organization.IMAGE_BY_IMAGE, FLOAT32)
    path = tmp_path / "utm.gsar"
    write_archive(GeoStream.from_chunks(meta, [chunk]), path)
    replayed = read_archive(path)
    assert replayed.crs == utm(10)
    assert replayed.collect_chunks()[0].lattice.crs == utm(10)
