"""Shared fixtures: small, fast instrument configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GeoStream, GridLattice
from repro.geo import LATLON, BoundingBox, goes_geostationary
from repro.ingest import GOESImager, SyntheticEarth, western_us_sector
from repro.server import StreamCatalog

# Mid-day over the western US so the visible band has signal.
DAY_T0 = 72_000.0


@pytest.fixture(scope="session")
def scene() -> SyntheticEarth:
    return SyntheticEarth(seed=7)


@pytest.fixture(scope="session")
def geos_crs():
    return goes_geostationary(-135.0)


@pytest.fixture()
def small_imager(scene, geos_crs) -> GOESImager:
    """A 2-frame, 48x96 GOES imager — fast enough for unit tests."""
    sector = western_us_sector(geos_crs, width=96, height=48)
    return GOESImager(
        scene=scene,
        lon_0=-135.0,
        sector_lattice=sector,
        n_frames=2,
        bands=("vis", "nir"),
        t0=DAY_T0,
    )


@pytest.fixture()
def catalog(small_imager) -> StreamCatalog:
    cat = StreamCatalog()
    cat.register_imager(small_imager)
    return cat


@pytest.fixture()
def latlon_lattice() -> GridLattice:
    """A simple 20x40 north-up lat/lon lattice over Northern California."""
    return GridLattice(LATLON, x0=-124.0, y0=42.0, dx=0.1, dy=-0.1, width=40, height=20)


def sector_subbox(imager: GOESImager, fx0: float, fy0: float, fx1: float, fy1: float) -> BoundingBox:
    """Fractional sub-rectangle of an imager's scan sector (native CRS)."""
    box = imager.sector_lattice.bbox
    return BoundingBox(
        box.xmin + box.width * fx0,
        box.ymin + box.height * fy0,
        box.xmin + box.width * fx1,
        box.ymin + box.height * fy1,
        box.crs,
    )


def hook_stream(stream: GeoStream, after_chunks: int, fire) -> GeoStream:
    """A GeoStream that calls ``fire()`` once, ``after_chunks`` into a scan.

    Used by the epoch-swap tests to land a ``request_replan`` from inside
    the chunk pump — exactly where the adaptive policy would raise it —
    so the cutover exercises the live drain-to-boundary path of
    ``DSMSServer.run``. Fires at most once across re-opens.
    """
    state = {"fired": False}

    def source():
        def gen():
            for i, chunk in enumerate(stream.chunks()):
                yield chunk
                if i + 1 == after_chunks and not state["fired"]:
                    state["fired"] = True
                    fire()

        return gen()

    return GeoStream(stream.metadata, source)


def nan_equal(a: np.ndarray, b: np.ndarray, atol: float = 0.0) -> bool:
    """Elementwise equality treating NaN == NaN."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        return False
    both_nan = np.isnan(a) & np.isnan(b)
    close = np.isclose(a, b, atol=atol, rtol=0.0, equal_nan=True)
    return bool(np.all(both_nan | close))
