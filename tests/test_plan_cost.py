"""Cost estimation over the canonical plan IR.

Estimates are computed on canonicalized plans (so queries that share
execution share a cost figure), and the estimated point counts must be
monotone non-increasing under added restrictions — a property test over
randomly generated query trees.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import Organization, TimeInterval
from repro.geo import BoundingBox, goes_geostationary
from repro.plan import canonicalize, estimate_plan
from repro.query import ast as q
from repro.query.cost import StreamProfile

GEOS = goes_geostationary(-135.0)
FRAME_BBOX = BoundingBox(800_000.0, 3_300_000.0, 2_000_000.0, 4_100_000.0, GEOS)
PROFILES = {
    "goes.vis": StreamProfile(
        frame_points=96 * 48,
        frame_bbox=FRAME_BBOX,
        row_width=96,
        organization=Organization.ROW_BY_ROW,
        crs=GEOS,
    ),
    "goes.nir": StreamProfile(
        frame_points=96 * 48,
        frame_bbox=FRAME_BBOX,
        row_width=96,
        organization=Organization.ROW_BY_ROW,
        crs=GEOS,
    ),
}


def _estimate(tree: q.QueryNode):
    plan = canonicalize(tree, crs_of={sid: p.crs for sid, p in PROFILES.items()})
    est, _ = estimate_plan(plan, PROFILES)
    return est


def _subbox(fx0: float, fy0: float, fx1: float, fy1: float) -> BoundingBox:
    b = FRAME_BBOX
    return BoundingBox(
        b.xmin + b.width * fx0,
        b.ymin + b.height * fy0,
        b.xmin + b.width * fx1,
        b.ymin + b.height * fy1,
        GEOS,
    )


class TestCanonicalPlanCosts:
    def test_estimate_on_canonical_plan_equals_folded_form(self):
        """Folded adjacent restrictions cost the same as the stacked tree."""
        big = _subbox(0.0, 0.0, 0.8, 0.8)
        small = _subbox(0.2, 0.2, 0.6, 0.6)
        stacked = q.SpatialRestrict(
            q.SpatialRestrict(q.StreamRef("goes.vis"), big), small
        )
        merged = canonicalize(stacked)
        est_stacked = _estimate(stacked)
        est_merged, _ = estimate_plan(merged, PROFILES)
        assert est_stacked.points == est_merged.points

    def test_commutative_orderings_share_one_estimate(self):
        ab = q.Compose(q.StreamRef("goes.vis"), q.StreamRef("goes.nir"), "+")
        ba = q.Compose(q.StreamRef("goes.nir"), q.StreamRef("goes.vis"), "+")
        assert _estimate(ab).points == _estimate(ba).points
        assert canonicalize(ab) == canonicalize(ba)

    def test_spatial_restriction_reduces_points(self):
        base = q.ValueMap(q.StreamRef("goes.vis"), "reflectance")
        restricted = q.SpatialRestrict(base, _subbox(0.25, 0.25, 0.75, 0.75))
        assert _estimate(restricted).points < _estimate(base).points


# -- property: added restrictions never increase estimated points -------------

_fractions = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)


@st.composite
def base_trees(draw) -> q.QueryNode:
    """Small random query trees over the profiled sources."""
    tree: q.QueryNode = q.StreamRef(draw(st.sampled_from(sorted(PROFILES))))
    for _ in range(draw(st.integers(0, 3))):
        kind = draw(
            st.sampled_from(["value_map", "stretch", "spatial", "value", "temporal"])
        )
        if kind == "value_map":
            tree = q.ValueMap(tree, "reflectance", (("bits", 10.0),))
        elif kind == "stretch":
            tree = q.Stretch(tree, "linear")
        elif kind == "spatial":
            fx0, fy0 = draw(_fractions) * 0.5, draw(_fractions) * 0.5
            w, h = draw(_fractions) * 0.5, draw(_fractions) * 0.5
            tree = q.SpatialRestrict(tree, _subbox(fx0, fy0, fx0 + w, fy0 + h))
        elif kind == "value":
            tree = q.ValueRestrict(tree, 0.0, draw(_fractions))
        else:
            lo = draw(st.floats(0.0, 1_000.0, allow_nan=False))
            tree = q.TemporalRestrict(tree, TimeInterval(lo, lo + 100.0))
    return tree


@st.composite
def restrictions(draw):
    kind = draw(st.sampled_from(["spatial", "value", "temporal"]))
    if kind == "spatial":
        fx0, fy0 = draw(_fractions) * 0.5, draw(_fractions) * 0.5
        w, h = draw(_fractions) * 0.5, draw(_fractions) * 0.5
        return lambda t: q.SpatialRestrict(t, _subbox(fx0, fy0, fx0 + w, fy0 + h))
    if kind == "value":
        hi = draw(_fractions)
        return lambda t: q.ValueRestrict(t, 0.0, hi)
    lo = draw(st.floats(0.0, 1_000.0, allow_nan=False))
    return lambda t: q.TemporalRestrict(t, TimeInterval(lo, lo + 50.0))


@given(tree=base_trees(), restrict=restrictions())
@settings(max_examples=60, deadline=None)
def test_estimated_points_monotone_under_added_restriction(tree, restrict):
    base = _estimate(tree)
    tightened = _estimate(restrict(tree))
    assert tightened.points <= base.points
