"""Frame-level distributed tracing: tracer, flight recorder, exporters.

The acceptance contract of the tracing layer:

* every delivered frame of a fully-sampled run carries a
  :class:`~repro.obs.trace.FrameTrace` whose stage hops **exactly** match
  the query's plan-DAG stage fingerprints (the same keys ``explain_dag``
  and ``StageStats`` use) — under subplan sharing, each query's trace
  keeps only its own dataflow path;
* the flight recorder is bounded (rings evict, pins dedup and cap) and
  SLO breaches / faults / dead letters auto-pin the affected frame;
* head sampling is honored and the untraced path records nothing;
* exporters render the same trace as an ASCII waterfall, Chrome
  trace-event JSON, and OTLP-shaped JSON, with stable span ids.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import ServerError
from repro.faults import FaultSpec, RecoveryContext, harden_catalog, recovering
from repro.geo import goes_geostationary
from repro.ingest import GOESImager, SyntheticEarth, western_us_sector
from repro.obs.slo import SLOPolicy
from repro.obs.trace import span_id_for
from repro.operators import AdaptiveLoadShedder
from repro.server import DSMSServer, StreamCatalog

from tests.conftest import DAY_T0

Q_REFL = "reflectance(goes.vis)"
Q_STRETCH = "stretch(reflectance(goes.vis), 'linear')"


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable_metrics()
    obs.disable_tracing()
    obs.disable_stats()
    obs.disable_frame_tracing()
    obs.get_registry().reset()
    yield
    obs.disable_frame_tracing()


def run_traced(catalog, *queries, sample_rate=1.0, capacity=16, seed=0):
    ftracer = obs.enable_frame_tracing(
        sample_rate=sample_rate, capacity=capacity, seed=seed
    )
    server = DSMSServer(catalog)
    sessions = [server.register(q, encode_png=False) for q in queries]
    server.run()
    return server, sessions, ftracer


def dag_fps(server, session):
    rid = server._session_to_reg[session.session_id]
    return set(server.plan_dag.stage_fingerprints(rid))


class TestFrameTraceAcceptance:
    def test_every_frame_traced_and_stages_match_dag_exactly(self, catalog):
        server, (session,), ftracer = run_traced(catalog, Q_STRETCH)
        traces = session.frame_traces()
        assert len(traces) == 2 and all(t is not None for t in traces)
        expected = dag_fps(server, session)
        assert expected  # the query compiled to shared DAG stages
        for trace in traces:
            assert trace.stage_fingerprints() == expected
            assert trace.hop_by_key("source:goes.vis") is not None
            delivery = trace.hop_by_key("delivery")
            assert delivery is not None and delivery.kind == "delivery"
            assert not trace.partial

    def test_hop_metrics_and_causality(self, catalog):
        server, (session,), _ = run_traced(catalog, Q_STRETCH)
        trace = session.frame_traces()[0]
        keys = {h.key for h in trace.hops}
        for hop in trace.hops:
            if hop.kind == "source":
                continue
            # Every non-source hop is causally linked into the trace.
            assert hop.parents & keys, f"orphan hop {hop.key}"
            assert hop.wall_s >= 0.0 and hop.queue_s >= 0.0
            assert hop.chunks > 0
        stage_hops = [h for h in trace.hops if h.kind == "stage"]
        assert all(h.points_in > 0 for h in stage_hops)
        assert trace.total_wall_s > 0.0

    def test_fanout_traces_keep_only_each_querys_path(self, catalog):
        server, sessions, _ = run_traced(catalog, Q_REFL, Q_STRETCH)
        fps_a, fps_b = (dag_fps(server, s) for s in sessions)
        assert fps_a < fps_b  # shared reflectance prefix, stretch on top
        for session, expected in zip(sessions, (fps_a, fps_b)):
            for trace in session.frame_traces():
                assert trace.stage_fingerprints() == expected

    def test_shared_stage_executes_once_but_appears_in_both_traces(self, catalog):
        server, sessions, _ = run_traced(catalog, Q_REFL, Q_STRETCH)
        (shared_fp,) = dag_fps(server, sessions[0])
        for session in sessions:
            trace = session.frame_traces()[0]
            assert trace.hop_by_key(shared_fp) is not None


class TestSampling:
    def test_rate_zero_traces_nothing(self, catalog):
        _, (session,), ftracer = run_traced(catalog, Q_REFL, sample_rate=0.0)
        assert session.frames
        assert all(t is None for t in session.frame_traces())
        assert ftracer.recorder.recorded == 0
        assert ftracer.chunks_traced == 0 and ftracer.chunks_sampled_out > 0

    def test_rate_one_traces_everything(self, catalog):
        _, (session,), ftracer = run_traced(catalog, Q_REFL, sample_rate=1.0)
        assert all(t is not None for t in session.frame_traces())
        assert ftracer.chunks_sampled_out == 0

    def test_fractional_rate_is_seed_deterministic(self, catalog, small_imager):
        def traced_count(seed):
            obs.disable_frame_tracing()
            cat = StreamCatalog()
            cat.register_imager(small_imager)
            _, _, ftracer = run_traced(cat, Q_REFL, sample_rate=0.5, seed=seed)
            obs.disable_frame_tracing()
            return ftracer.chunks_traced

        a, b = traced_count(7), traced_count(7)
        assert a == b and 0 < a

    def test_untraced_chunks_cost_nothing(self, catalog, monkeypatch):
        # With a tracer installed but rate 0, the per-chunk path must not
        # time anything (same discipline as the no-observability path).
        def forbidden():
            raise AssertionError("perf_counter on sampled-out path")

        obs.enable_frame_tracing(sample_rate=0.0)
        monkeypatch.setattr("repro.plan.stages.perf_counter", forbidden)
        monkeypatch.setattr("repro.operators.delivery.perf_counter", forbidden)
        server = DSMSServer(catalog)
        session = server.register(Q_REFL, encode_png=False)
        server.run()
        assert session.frames


class TestFlightRecorder:
    def test_ring_bound_and_evictions(self, catalog):
        server, (session,), ftracer = run_traced(catalog, Q_REFL, capacity=1)
        assert ftracer.recorder.within_bounds()
        assert ftracer.recorder.evictions >= 1
        recent = server.recent_traces(session)
        assert len(recent) == 1
        # Newest-last: the surviving trace is the final frame's.
        assert recent[-1].frame_t == session.frames[-1].image.t

    def test_pin_dedups_and_is_bounded(self, catalog):
        _, (session,), ftracer = run_traced(catalog, Q_REFL)
        trace = session.frame_traces()[0]
        for _ in range(3):
            ftracer.recorder.pin(trace, reason="manual")
        assert ftracer.recorder.pinned.count(trace) == 1
        assert trace.pinned and trace.pin_reason == "manual"
        assert ftracer.recorder.within_bounds()

    def test_recorder_metrics_published(self, catalog):
        with obs.observe():
            run_traced(catalog, Q_REFL, capacity=1)
            obs.disable_frame_tracing()
            names = {m["name"] for m in obs.get_registry().snapshot()}
        assert "repro_trace_chunks_total" in names
        assert "repro_trace_frames_total" in names
        assert "repro_trace_recorder_evictions_total" in names


class TestServerAPI:
    def test_frame_trace_and_recent_traces(self, catalog):
        server, (session,), _ = run_traced(catalog, Q_REFL)
        trace = server.frame_trace(session.frames[-1])
        assert trace is session.frames[-1].trace
        recent = server.recent_traces(session)
        assert trace in recent
        # Registration-id lookups work too (the SLO monitor's keying).
        rid = server._session_to_reg[session.session_id]
        assert server.recent_traces(rid) == recent

    def test_untraced_frame_is_a_server_error(self, catalog):
        server = DSMSServer(catalog)
        session = server.register(Q_REFL, encode_png=False)
        server.run()
        with pytest.raises(ServerError, match="trace"):
            server.frame_trace(session.frames[0])
        with pytest.raises(ServerError, match="tracer"):
            server.recent_traces(session)

    def test_observe_frame_trace_installs_and_restores(self, catalog):
        assert obs.current_frame_tracer() is None
        with obs.observe(frame_trace=True) as ob:
            assert obs.current_frame_tracer() is ob.frame_tracer
            server = DSMSServer(catalog)
            session = server.register(Q_REFL, encode_png=False)
            server.run()
            assert all(t is not None for t in session.frame_traces())
        assert obs.current_frame_tracer() is None


def make_stall_server():
    """Hardened catalog whose source stalls past the SLO deterministically."""
    crs = goes_geostationary(-135.0)
    imager = GOESImager(
        scene=SyntheticEarth(seed=5),
        sector_lattice=western_us_sector(crs, width=16, height=8),
        n_frames=3,
        t0=DAY_T0,
    )
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    spec = FaultSpec(seed=202, stall=0.5, stall_seconds=30.0)
    ctx = RecoveryContext(stall_threshold_s=10.0)
    hardened, injector, ctx = harden_catalog(catalog, spec, context=ctx)
    shedder = AdaptiveLoadShedder(points_per_frame_budget=16 * 8 * 2.0)
    server = DSMSServer(
        hardened,
        ingest_shedder=shedder,
        recovery=ctx,
        slo=SLOPolicy(max_lag_s=20.0),
    )
    session = server.register(Q_REFL, encode_png=False)
    return server, session, ctx, injector


class TestAutoPinning:
    def test_slo_breach_pins_the_breaching_frame(self):
        ftracer = obs.enable_frame_tracing()
        server, session, ctx, injector = make_stall_server()
        with recovering(ctx):
            server.run()
        assert injector.counts["stall"] > 0
        assert server.slo_monitor.breach_count() > 0
        pinned = ftracer.recorder.pinned
        assert pinned, "SLO breach must auto-pin a frame trace"
        assert any(
            (t.pin_reason or "").startswith("slo-breach:")
            or any(n.startswith("slo-breach:") for n in t.annotations)
            for t in pinned
        ), "the breach must be recorded on a pinned trace"
        rid = server._session_to_reg[session.session_id]
        assert ftracer.is_breached(rid)

    def test_breached_query_forces_sampling_on(self):
        ftracer = obs.enable_frame_tracing(sample_rate=0.0)
        server, session, ctx, injector = make_stall_server()
        with recovering(ctx):
            server.run()
        assert server.slo_monitor.breach_count() > 0
        # Rate 0 would normally trace nothing; the breach overrides it for
        # every chunk admitted after the breach fired.
        assert ftracer.chunks_traced > 0

    def test_quarantine_pins_a_partial_trace(self):
        ftracer = obs.enable_frame_tracing()
        spec = FaultSpec(seed=101, drop=0.1)
        hardened, injector, ctx = harden_catalog(make_stall_catalog(), spec)
        server = DSMSServer(hardened, recovery=ctx)
        server.register(Q_REFL, encode_png=False)
        with recovering(ctx):
            server.run()
        assert injector.counts["drop"] > 0
        assert ctx.dead_letter.total > 0
        partials = [t for t in ftracer.recorder.pinned if t.partial]
        assert partials, "quarantined frames must pin partial traces"
        assert any(
            any(n.startswith("recovery:quarantined:") for n in t.annotations)
            for t in partials
        )


def make_stall_catalog() -> StreamCatalog:
    crs = goes_geostationary(-135.0)
    imager = GOESImager(
        scene=SyntheticEarth(seed=5),
        sector_lattice=western_us_sector(crs, width=16, height=8),
        n_frames=3,
        t0=DAY_T0,
    )
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    return catalog


class TestWaterfall:
    def test_render_contains_every_hop_and_the_split(self, catalog):
        server, (session,), _ = run_traced(catalog, Q_STRETCH)
        trace = session.frame_traces()[-1]
        text = obs.render_waterfall(trace)
        for hop in trace.hops:
            assert hop.label in text
        assert "compute" in text and "queue" in text
        assert "total" in text
        # Stage hops show their StageStats fingerprint (the exemplar link
        # into EXPLAIN ANALYZE / provenance output).
        for fp in trace.stage_fingerprints():
            assert f"#{fp[:10]}" in text

    def test_render_marks_pins_and_annotations(self, catalog):
        _, (session,), ftracer = run_traced(catalog, Q_REFL)
        trace = session.frame_traces()[0]
        ftracer.recorder.pin(trace, reason="because")
        trace.annotations = tuple(trace.annotations) + ("fault:demo",)
        text = obs.render_waterfall(trace)
        assert "PINNED: because" in text
        assert "! fault:demo" in text


class TestExporters:
    def test_chrome_trace_events(self, catalog):
        server, (session,), _ = run_traced(catalog, Q_STRETCH)
        trace = session.frame_traces()[-1]
        doc = obs.traces_to_chrome([trace])
        json.dumps(doc)  # must serialize
        events = doc["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in slices}
        for hop in trace.hops:
            assert hop.label in names
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in slices)
        threads = [e for e in events if e.get("name") == "thread_name"]
        assert len(threads) == len(trace.hops)

    def test_otlp_spans_link_parents_with_stable_ids(self, catalog):
        server, (session,), _ = run_traced(catalog, Q_STRETCH)
        trace = session.frame_traces()[-1]
        doc = obs.traces_to_otlp([trace])
        json.dumps(doc)
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert len(spans) == len(trace.hops)
        ids = {s["spanId"] for s in spans}
        assert len(ids) == len(spans)
        roots = [s for s in spans if "parentSpanId" not in s]
        assert len(roots) == 1 and roots[0]["name"].startswith("scan ")
        for span in spans:
            assert len(span["traceId"]) == 32
            if "parentSpanId" in span:
                assert span["parentSpanId"] in ids
        # Exported ids are a pure function of (trace id, hop key).
        assert span_id_for(trace.trace_id, "delivery") in ids
        assert span_id_for(trace.trace_id, "delivery") == span_id_for(
            trace.trace_id, "delivery"
        )
        assert span_id_for(trace.trace_id + 1, "delivery") not in ids


class TestSpanDirectionNormalization:
    def test_push_spans_record_consumer_direction_raw(self, catalog):
        with obs.observe(trace=True) as ob:
            server = DSMSServer(catalog)
            server.register(Q_STRETCH, encode_png=False)
            server.run()
        raw = ob.tracer.to_dicts()
        stage_spans = [s for s in raw if s["direction"] == "consumer"]
        assert len(stage_spans) == 2  # reflectance + stretch
        producer = next(s for s in stage_spans if s["name"] == "value-transform")
        consumer = next(s for s in stage_spans if s["name"] == "frame-stretch")
        # Raw (unchanged contract): the producer parents on its consumer.
        assert producer["parent_id"] == consumer["span_id"]
        assert consumer["parent_id"] is None

        normalized = obs.normalize_spans(raw)
        producer_n = next(s for s in normalized if s["name"] == "value-transform")
        consumer_n = next(s for s in normalized if s["name"] == "frame-stretch")
        # Normalized: dataflow order, the producer is the root.
        assert producer_n["parent_id"] is None
        assert consumer_n["parent_id"] == producer_n["span_id"]
        assert all(s["direction"] == "dataflow" for s in normalized)
        # The raw dicts were not mutated.
        assert producer["direction"] == "consumer"

    def test_pull_spans_pass_through_unchanged(self, small_imager):
        from repro.operators import Rescale

        with obs.observe(trace=True) as ob:
            small_imager.stream("vis").pipe(Rescale(2.0), Rescale(0.5)).count_points()
        raw = ob.tracer.to_dicts()
        assert all(s["direction"] == "dataflow" for s in raw)
        assert obs.normalize_spans(raw) == raw

    def test_collect_run_exports_normalized_spans(self, catalog):
        with obs.observe(trace=True) as ob:
            server = DSMSServer(catalog)
            server.register(Q_STRETCH, encode_png=False)
            server.run()
            run = obs.collect_run(tracer=ob.tracer, registry=ob.registry)
        assert all(s["direction"] == "dataflow" for s in run["spans"])
