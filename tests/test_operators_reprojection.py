"""Re-projection (Fig. 2b): correctness, incremental buffering, hazards."""

import numpy as np
import pytest

from repro.core import FLOAT32, GeoStream, GridChunk, GridLattice, Organization, StreamMetadata
from repro.errors import BlockingHazardError, OperatorError
from repro.geo import LATLON, plate_carree, utm
from repro.ingest import LidarScanner
from repro.operators import Reproject


@pytest.fixture()
def pc_crs():
    return plate_carree()


class TestGridReprojection:
    def test_output_crs_and_shape(self, small_imager, pc_crs):
        out = small_imager.stream("vis").pipe(Reproject(pc_crs)).collect_frames()
        assert len(out) == 2
        assert out[0].lattice.crs == pc_crs
        # Default: output lattice corresponds in size to the source frame.
        src_shape = small_imager.sector_lattice.shape
        assert out[0].shape == src_shape

    def test_values_match_source_at_common_points(self, small_imager, pc_crs):
        """Resampled values agree with the source at shared locations."""
        stream = small_imager.stream("vis")
        src = stream.collect_frames()[0]
        out = stream.pipe(Reproject(pc_crs, method="bilinear")).collect_frames()[0]
        # Probe interior output pixels; map back to the source and compare
        # against a locally-interpolated source value within a tolerance
        # bounded by the local value variation.
        rng = np.random.default_rng(0)
        rows = rng.integers(2, out.shape[0] - 2, 40)
        cols = rng.integers(2, out.shape[1] - 2, 40)
        ox = out.lattice.x_of_col(cols)
        oy = out.lattice.y_of_row(rows)
        lon, lat = pc_crs.to_lonlat(ox, oy)
        sx, sy = small_imager.crs.from_lonlat(lon, lat)
        s_rows = src.lattice.row_of_y(sy)
        s_cols = src.lattice.col_of_x(sx)
        inside = (
            (s_rows > 0) & (s_rows < src.shape[0] - 1)
            & (s_cols > 0) & (s_cols < src.shape[1] - 1)
        )
        got = out.values[rows[inside], cols[inside]]
        # Bound by the local neighborhood min/max of the source.
        for value, r, c in zip(got, s_rows[inside], s_cols[inside]):
            window = src.values[r - 1 : r + 2, c - 1 : c + 2].astype(float)
            assert window.min() - 1e-3 <= value <= window.max() + 1e-3

    def test_incremental_buffer_smaller_than_frame(self, small_imager, pc_crs):
        """E4: scan-sector metadata bounds the buffer to a row band."""
        op = Reproject(pc_crs)
        small_imager.stream("vis").pipe(op).count_points()
        frame_points = small_imager.sector_lattice.n_points
        assert 0 < op.stats.max_buffered_points < frame_points / 2

    def test_explicit_output_lattice(self, small_imager, pc_crs):
        target = GridLattice(pc_crs, -13_400_000.0, 4_800_000.0, 20_000.0, -20_000.0, 50, 30)
        out = small_imager.stream("vis").pipe(
            Reproject(pc_crs, dst_lattice=target)
        ).collect_frames()
        assert out[0].lattice == target

    def test_explicit_resolution(self, small_imager, pc_crs):
        out = small_imager.stream("vis").pipe(
            Reproject(pc_crs, resolution=(50_000.0, 50_000.0))
        ).collect_frames()[0]
        assert abs(out.lattice.dx) == pytest.approx(50_000.0)

    def test_pixels_outside_source_are_fill(self, small_imager):
        """Reprojecting a rectangular sector to UTM leaves NaN wedges."""
        out = small_imager.stream("vis").pipe(Reproject(utm(10))).collect_frames()[0]
        assert np.isnan(out.values).any()
        assert np.isfinite(out.values).any()

    def test_missing_metadata_raises_blocking_hazard(self, latlon_lattice):
        """Section 3.2: without scan metadata the operator could block forever."""
        rows = [
            GridChunk(
                np.zeros((1, latlon_lattice.width), dtype=np.float32),
                latlon_lattice.row_lattice(r),
                "b",
                float(r),
                frame=None,  # no FrameInfo
                row0=r,
                last_in_frame=False,
            )
            for r in range(3)
        ]
        meta = StreamMetadata("x", "b", LATLON, Organization.ROW_BY_ROW, FLOAT32)
        stream = GeoStream.from_chunks(meta, rows)
        with pytest.raises(BlockingHazardError):
            stream.pipe(Reproject(utm(10))).collect_chunks()

    def test_frameless_whole_frame_ok(self, latlon_lattice):
        """A single self-contained frame chunk needs no extra metadata."""
        chunk = GridChunk(
            np.random.default_rng(0).uniform(size=latlon_lattice.shape).astype(np.float32),
            latlon_lattice,
            "b",
            0.0,
            last_in_frame=True,
        )
        meta = StreamMetadata("x", "b", LATLON, Organization.IMAGE_BY_IMAGE, FLOAT32)
        stream = GeoStream.from_chunks(meta, [chunk])
        out = stream.pipe(Reproject(utm(10))).collect_frames()
        assert len(out) == 1

    def test_methods_all_run(self, small_imager, pc_crs):
        for method in ("nearest", "bilinear", "bicubic"):
            out = small_imager.stream("vis").pipe(
                Reproject(pc_crs, method=method)
            ).collect_frames(limit=1)
            assert out[0].lattice.crs == pc_crs

    def test_unknown_method_rejected(self, pc_crs):
        with pytest.raises(OperatorError):
            Reproject(pc_crs, method="sinc")

    def test_dst_lattice_crs_checked(self, pc_crs, latlon_lattice):
        with pytest.raises(OperatorError):
            Reproject(pc_crs, dst_lattice=latlon_lattice)

    def test_metadata_crs_updated(self, small_imager, pc_crs):
        out = small_imager.stream("vis").pipe(Reproject(pc_crs))
        assert out.metadata.crs == pc_crs

    def test_roundtrip_reprojection_preserves_field(self, pc_crs):
        """latlon -> plate carree on a smooth field: values survive."""
        lattice = GridLattice(LATLON, -124.0, 42.0, 0.05, -0.05, 60, 40)
        x, y = lattice.meshgrid()
        smooth = (np.sin(x / 3.0) + np.cos(y / 3.0)).astype(np.float32)
        chunk = GridChunk(smooth, lattice, "b", 0.0, last_in_frame=True)
        meta = StreamMetadata("x", "b", LATLON, Organization.IMAGE_BY_IMAGE, FLOAT32)
        stream = GeoStream.from_chunks(meta, [chunk])
        out = stream.pipe(Reproject(pc_crs, method="bilinear")).collect_frames()[0]
        # Map output pixels back and compare to the analytic field.
        ox, oy = out.lattice.meshgrid()
        lon, lat = pc_crs.to_lonlat(ox, oy)
        truth = np.sin(lon / 3.0) + np.cos(lat / 3.0)
        good = np.isfinite(out.values)
        assert good.mean() > 0.8
        err = np.abs(out.values[good] - truth[good])
        assert np.percentile(err, 95) < 0.01


class TestPointReprojection:
    def test_pointwise_no_buffering(self, scene):
        lidar = LidarScanner(scene=scene, n_points=300, points_per_chunk=100)
        op = Reproject(utm(10))
        out = lidar.stream().pipe(op).collect_chunks()
        assert sum(c.n_points for c in out) == 300
        assert op.stats.is_nonblocking
        assert out[0].crs == utm(10)

    def test_coordinates_transformed_correctly(self, scene):
        lidar = LidarScanner(scene=scene, n_points=100, points_per_chunk=100)
        src = lidar.stream().collect_chunks()[0]
        out = lidar.stream().pipe(Reproject(utm(10))).collect_chunks()[0]
        ex, ey = utm(10).from_lonlat(src.x, src.y)
        np.testing.assert_allclose(out.x, ex, atol=1e-6)
        np.testing.assert_allclose(out.y, ey, atol=1e-6)
        np.testing.assert_array_equal(out.values, src.values)
