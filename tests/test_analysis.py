"""Static analyzer: one positive and one negative test per diagnostic code.

The positive test proves the code fires on its documented trigger; the
negative test proves the nearest well-formed variant stays silent, so
every check is anchored from both sides (no dead codes, no false alarms
on the happy path). See docs/static-analysis.md for the catalogue.
"""

import json

import pytest

from repro.analysis import StaticContext, analyze, check_dag, check_server
from repro.analysis.diagnostics import CODES, Diagnostic, DiagnosticReport, Severity
from repro.cli import build_demo_catalog, main
from repro.errors import QueryAnalysisError
from repro.obs.slo import SLOPolicy
from repro.plan.stages import Edge
from repro.query import ast as q
from repro.server import DSMSServer

CLEAN_QUERY = "stretch(reflectance(goes.vis), 'linear')"
# The paper's Section 3.4 worked query (docs/query-language.md).
WORKED_QUERY = (
    "within(reproject(stretch(ndvi(reflectance(goes.nir), reflectance(goes.vis)),"
    " 'linear'), 'utm:10'), bbox(587798, 4206290, 756100, 4432070, crs='utm:10'))"
)


@pytest.fixture(scope="module")
def catalog():
    _, cat = build_demo_catalog(seed=7, n_frames=2, width=96, height=48)
    return cat


def codes_of(report):
    return report.codes()


# -- analyzer codes: positive / negative pairs ------------------------------------


def test_syn001_unbalanced_query(catalog):
    report = analyze("within(reflectance(goes.vis)", catalog)
    assert codes_of(report) == {"GS-SYN001"}
    assert not report.ok


def test_syn001_unparseable_construction(catalog):
    # Raised while *building* the tree (inverted interval), not tokenizing.
    report = analyze("during(reflectance(goes.vis), 100.0, 50.0)", catalog)
    assert codes_of(report) == {"GS-SYN001"}


def test_syn001_negative(catalog):
    assert "GS-SYN001" not in codes_of(analyze(CLEAN_QUERY, catalog))


def test_ref001_unknown_stream(catalog):
    report = analyze("reflectance(goes.missing)", catalog)
    assert codes_of(report) == {"GS-REF001"}
    assert "goes.vis" in report.errors[0].message  # suggests the catalog


def test_ref001_negative(catalog):
    assert "GS-REF001" not in codes_of(analyze("reflectance(goes.vis)", catalog))


def test_crs001_mixed_composition(catalog):
    text = "ndvi(reproject(reflectance(goes.nir), 'utm:10'), reflectance(goes.vis))"
    assert codes_of(analyze(text, catalog)) == {"GS-CRS001"}


def test_crs001_negative(catalog):
    text = "ndvi(reflectance(goes.nir), reflectance(goes.vis))"
    assert "GS-CRS001" not in codes_of(analyze(text, catalog))


def test_crs002_region_not_mappable(catalog):
    # Longitudes 40..50E are on the far side of the earth from GOES-135.
    text = "within(reflectance(goes.vis), bbox(40, 10, 50, 20))"
    assert codes_of(analyze(text, catalog)) == {"GS-CRS002"}


def test_crs002_negative(catalog):
    # A visible western-US rectangle maps fine.
    text = "within(reflectance(goes.vis), bbox(-124, 38, -120, 41))"
    assert "GS-CRS002" not in codes_of(analyze(text, catalog))


def test_crs003_redundant_reproject(catalog):
    report = analyze("reproject(reflectance(goes.vis), 'geos:-135')", catalog)
    assert codes_of(report) == {"GS-CRS003"}
    assert report.ok  # warning only: the query still runs


def test_crs003_negative(catalog):
    text = "reproject(reflectance(goes.vis), 'utm:10')"
    assert "GS-CRS003" not in codes_of(analyze(text, catalog))


def test_val001_unknown_stretch_kind(catalog):
    text = "stretch(reflectance(goes.vis), 'bogus')"
    assert codes_of(analyze(text, catalog)) == {"GS-VAL001"}


def test_val001_unknown_aggregate(catalog):
    text = "tagg(reflectance(goes.vis), 'median', 4)"
    assert codes_of(analyze(text, catalog)) == {"GS-VAL001"}


def test_val001_negative(catalog):
    text = "tagg(stretch(reflectance(goes.vis), 'linear'), 'mean', 4)"
    assert "GS-VAL001" not in codes_of(analyze(text, catalog))


def test_val002_inverted_vrange(catalog):
    text = "vrange(reflectance(goes.vis), 0.5, 0.1)"
    assert codes_of(analyze(text, catalog)) == {"GS-VAL002"}


def test_val002_negative(catalog):
    text = "vrange(reflectance(goes.vis), 0.1, 0.5)"
    assert "GS-VAL002" not in codes_of(analyze(text, catalog))


def test_val003_range_above_domain(catalog):
    # reflectance() maps into [0, 1]; [2, 3] can never match.
    text = "vrange(reflectance(goes.vis), 2.0, 3.0)"
    assert codes_of(analyze(text, catalog)) == {"GS-VAL003"}


def test_val003_negative(catalog):
    text = "vrange(reflectance(goes.vis), 0.2, 0.8)"
    assert "GS-VAL003" not in codes_of(analyze(text, catalog))


def test_val004_band_arity_mismatch():
    ctx = StaticContext(known_streams=frozenset({"a", "b"}), channels={"a": 1, "b": 3})
    tree = q.Compose(q.StreamRef("a"), q.StreamRef("b"), "sup")
    assert codes_of(analyze(tree, context=ctx)) == {"GS-VAL004"}


def test_val004_negative():
    ctx = StaticContext(known_streams=frozenset({"a", "b"}), channels={"a": 3, "b": 3})
    tree = q.Compose(q.StreamRef("a"), q.StreamRef("b"), "sup")
    assert "GS-VAL004" not in codes_of(analyze(tree, context=ctx))


def test_val005_vacuous_vrange(catalog):
    report = analyze("vrange(reflectance(goes.vis), -1.0, 2.0)", catalog)
    assert codes_of(report) == {"GS-VAL005"}
    assert report.ok  # warning


def test_val005_negative(catalog):
    text = "vrange(reflectance(goes.vis), 0.2, 0.8)"
    assert "GS-VAL005" not in codes_of(analyze(text, catalog))


def test_val006_divisor_spans_zero(catalog):
    # rescale maps [0,1] onto [-1,1], which straddles zero.
    text = "reflectance(goes.vis) / rescale(reflectance(goes.nir), 2.0, -1.0)"
    report = analyze(text, catalog)
    assert codes_of(report) == {"GS-VAL006"}
    assert report.ok


def test_val006_negative(catalog):
    # Divisor domain [1, 2] excludes zero.
    text = "reflectance(goes.vis) / rescale(reflectance(goes.nir), 1.0, 1.0)"
    assert codes_of(analyze(text, catalog)) == set()


def test_sat001_stacked_disjoint_regions(catalog):
    text = (
        "within(within(reflectance(goes.vis), bbox(-124, 38, -122, 40)), "
        "bbox(-118, 34, -116, 36))"
    )
    assert codes_of(analyze(text, catalog)) == {"GS-SAT001"}


def test_sat001_negative(catalog):
    text = (
        "within(within(reflectance(goes.vis), bbox(-124, 36, -118, 41)), "
        "bbox(-122, 37, -120, 40))"
    )
    assert "GS-SAT001" not in codes_of(analyze(text, catalog))


def test_sat002_region_off_extent(catalog):
    # Same CRS as the stream, but south-west of the scanned sector.
    text = (
        "within(reflectance(goes.vis), "
        "bbox(-2000000, -2000000, -1000000, -1000000, crs='geos:-135'))"
    )
    assert codes_of(analyze(text, catalog)) == {"GS-SAT002"}


def test_sat002_negative(catalog):
    text = "within(reflectance(goes.vis), bbox(-124, 38, -120, 41))"
    assert "GS-SAT002" not in codes_of(analyze(text, catalog))


def test_sat003_empty_window(catalog):
    # during() is end-exclusive, so [t, t) is empty.
    text = "during(reflectance(goes.vis), 50.0, 50.0)"
    assert codes_of(analyze(text, catalog)) == {"GS-SAT003"}


def test_sat003_stacked_disjoint_windows(catalog):
    text = "during(during(reflectance(goes.vis), 0, 10), 20, 30)"
    assert codes_of(analyze(text, catalog)) == {"GS-SAT003"}


def test_sat003_negative(catalog):
    text = "during(reflectance(goes.vis), 72000, 73000)"
    assert "GS-SAT003" not in codes_of(analyze(text, catalog))


def test_sat004_negative_sector_window(catalog):
    text = "sectors(reflectance(goes.vis), -5, -2)"
    assert codes_of(analyze(text, catalog)) == {"GS-SAT004"}


def test_sat004_negative(catalog):
    text = "sectors(reflectance(goes.vis), 0, 3)"
    assert "GS-SAT004" not in codes_of(analyze(text, catalog))


def test_op001_bad_coarsen_factor(catalog):
    text = "coarsen(reflectance(goes.vis), 0)"
    assert codes_of(analyze(text, catalog)) == {"GS-OP001"}


def test_op001_bad_window(catalog):
    text = "tagg(reflectance(goes.vis), 'mean', 0)"
    assert codes_of(analyze(text, catalog)) == {"GS-OP001"}


def test_op001_negative(catalog):
    text = "coarsen(tagg(reflectance(goes.vis), 'mean', 4), 2)"
    assert "GS-OP001" not in codes_of(analyze(text, catalog))


def test_slo001_budget_exceeded(catalog):
    report = analyze("reflectance(goes.vis)", catalog, slo=1e-9)
    assert codes_of(report) == {"GS-SLO001"}
    assert report.ok  # warning


def test_slo001_negative(catalog):
    report = analyze("reflectance(goes.vis)", catalog, slo=1e9)
    assert "GS-SLO001" not in codes_of(report)


def test_slo002_escalation_without_shedder(catalog):
    policy = SLOPolicy(max_lag_s=1e9, escalate_shedding=True)
    report = analyze(
        "reflectance(goes.vis)", catalog, slo=policy, has_ingest_shedder=False
    )
    assert codes_of(report) == {"GS-SLO002"}


def test_slo002_negative(catalog):
    policy = SLOPolicy(max_lag_s=1e9, escalate_shedding=True)
    report = analyze(
        "reflectance(goes.vis)", catalog, slo=policy, has_ingest_shedder=True
    )
    assert "GS-SLO002" not in codes_of(report)


# -- DAG invariants (GS-DAG001..004) against a live server ------------------------


def make_server():
    _, cat = build_demo_catalog(seed=7, n_frames=2, width=96, height=48)
    server = DSMSServer(cat)
    server.register("stretch(reflectance(goes.vis), 'linear')", encode_png=False)
    server.register("vrange(reflectance(goes.vis), 0.0, 0.4)", encode_png=False)
    return server


def terminal_edges(dag):
    for stage in dag.order:
        for edge in stage.outputs:
            if edge.stage is None and edge.sink is not None:
                yield edge
    for edges in dag.taps.values():
        for edge in edges:
            if edge.stage is None and edge.sink is not None:
                yield edge


def test_dag_healthy_server_selfchecks_clean():
    server = make_server()
    report = server.selfcheck()
    assert report.ok and len(report) == 0


def test_dag001_stale_fingerprint_index():
    server = make_server()
    server.plan_dag._by_fingerprint["deadbeef"] = server.plan_dag.order[0]
    assert codes_of(server.selfcheck()) == {"GS-DAG001"}


def test_dag002_dangling_edge_target():
    server = make_server()
    dag = server.plan_dag
    target = None
    for stage in dag.order:
        for edge in stage.outputs:
            if edge.stage is not None:
                target = edge.stage
    assert target is not None
    dag.order.remove(target)
    assert "GS-DAG002" in codes_of(check_dag(dag))


def test_dag002_edge_without_target_or_sink():
    server = make_server()
    server.plan_dag.order[0].outputs.append(Edge())
    assert codes_of(check_dag(server.plan_dag)) == {"GS-DAG002"}


def test_dag003_orphaned_subscriber():
    server = make_server()
    server.plan_dag.order[0].subscribers.add(9999)
    # A bogus subscriber is both a refcount and an epoch-ownership drift.
    assert codes_of(server.selfcheck()) == {"GS-DAG003", "GS-DAG005"}


def test_dag003_unsubscribed_stage():
    server = make_server()
    server.plan_dag.order[0].subscribers.clear()
    # No subscribers, no epoch owners, and the committed epoch's stage
    # set no longer matches what the query actually subscribes to.
    assert codes_of(server.selfcheck()) == {"GS-DAG003", "GS-DAG005", "GS-DAG006"}


def test_dag004_terminal_edge_without_roots():
    server = make_server()
    edges = list(terminal_edges(server.plan_dag))
    assert edges
    for edge in edges:
        edge.roots.clear()
    assert codes_of(server.selfcheck()) == {"GS-DAG004"}


def test_dag_negative_check_dag_with_registrations():
    server = make_server()
    registrations = {
        reg_id: list(reg.stages) for reg_id, reg in server._registrations.items()
    }
    report = check_dag(server.plan_dag, registrations)
    assert report.ok and len(report) == 0


def test_check_server_reports_slo002():
    server = make_server()
    server.set_slo(SLOPolicy(max_lag_s=1e9, escalate_shedding=True))
    assert "GS-SLO002" in codes_of(check_server(server))


# -- server surfacing: strict registration ----------------------------------------


def test_register_query_strict_rejects_bad_query():
    server = make_server()
    with pytest.raises(QueryAnalysisError) as excinfo:
        server.register_query("vrange(reflectance(goes.vis), 2.0, 3.0)")
    assert "GS-VAL003" in excinfo.value.report.codes()


def test_register_query_strict_allows_warnings():
    server = make_server()
    session = server.register_query("vrange(reflectance(goes.vis), -1.0, 2.0)")
    assert session is not None  # GS-VAL005 is a warning, not an error


def test_register_default_is_lenient():
    server = make_server()
    # Unsatisfiable but syntactically valid: default registration accepts it.
    session = server.register("vrange(reflectance(goes.vis), 2.0, 3.0)")
    assert session is not None


def test_analyze_query_uses_server_context():
    server = make_server()
    server.set_slo(SLOPolicy(max_lag_s=1e9, escalate_shedding=True))
    report = server.analyze_query("reflectance(goes.vis)")
    assert "GS-SLO002" in report.codes()


# -- CLI: repro check / explain --check -------------------------------------------


def test_cli_check_clean_query_exits_zero(capsys):
    assert main(["check", CLEAN_QUERY]) == 0
    assert "analyzes clean" in capsys.readouterr().out


def test_cli_check_error_exits_one(capsys):
    assert main(["check", "vrange(reflectance(goes.vis), 2.0, 3.0)"]) == 1
    out = capsys.readouterr().out
    assert "GS-VAL003" in out


def test_cli_check_strict_promotes_warnings(capsys):
    warn_query = "vrange(reflectance(goes.vis), -1.0, 2.0)"
    assert main(["check", warn_query]) == 0
    assert main(["check", "--strict", warn_query]) == 1


def test_cli_check_json_output(capsys):
    assert main(["check", "--json", "reflectance(goes.missing)"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["errors"] == 1
    assert payload["diagnostics"][0]["code"] == "GS-REF001"


def test_cli_check_slo_budget(capsys):
    assert main(["check", "--strict", "--slo", "1e-9", CLEAN_QUERY]) == 1
    assert "GS-SLO001" in capsys.readouterr().out


def test_cli_explain_check_gate(capsys):
    assert main(["explain", "--check", CLEAN_QUERY]) == 0
    assert main(["explain", "--check", "during(reflectance(goes.vis), 5.0, 5.0)"]) == 1


# -- diagnostics framework --------------------------------------------------------


def test_diagnostic_rejects_undocumented_code():
    with pytest.raises(ValueError):
        Diagnostic(code="GS-XXX999", severity=Severity.ERROR, message="nope")


def test_every_code_has_category_example_and_hint():
    categories = set()
    for code, info in CODES.items():
        assert info.code == code
        assert info.title and info.example and info.hint
        categories.add(info.category)
    # The five families the ISSUE requires the checker to span.
    assert {"crs", "value", "satisfiability", "slo", "dag"} <= categories


def test_severity_ordering():
    assert Severity.INFO < Severity.WARNING < Severity.ERROR
    assert Severity.WARNING <= Severity.WARNING


def test_report_render_includes_span_caret(catalog):
    report = analyze("vrange(reflectance(goes.vis), 2.0, 3.0)", catalog)
    rendered = report.render()
    assert "GS-VAL003" in rendered
    assert "^" in rendered  # source-span caret under the offending term
    assert "error" in rendered


def test_report_exit_codes():
    warn = Diagnostic(code="GS-VAL005", severity=Severity.WARNING, message="w")
    err = Diagnostic(code="GS-VAL002", severity=Severity.ERROR, message="e")
    assert DiagnosticReport(()).exit_code() == 0
    assert DiagnosticReport((warn,)).exit_code() == 0
    assert DiagnosticReport((warn,)).exit_code(strict=True) == 1
    assert DiagnosticReport((err,)).exit_code() == 1


def test_worked_example_analyzes_clean(catalog):
    report = analyze(WORKED_QUERY, catalog, slo=1e9)
    assert report.ok and len(report) == 0
