"""Seeded chaos runs: every fault class, end to end, bit-for-bit.

For each fault kind and each seed the full push pipeline runs behind a
:class:`~repro.faults.FaultInjector` and the hardened catalog from
:func:`~repro.faults.harden_catalog`. The contract under test:

* no fault ever surfaces as an unhandled exception;
* every frame that *does* get delivered is bit-identical to the same
  frame from a fault-free baseline run (corruption is quarantined, never
  delivered);
* the ``repro_faults_injected_total`` counters equal the injector's own
  bookkeeping exactly — observability never under- or over-counts.

Seeds default to five fixed values; CI's chaos job overrides them one at
a time via the ``CHAOS_SEED`` environment variable.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import obs
from repro.faults import FAULT_KINDS, FaultSpec, harden_catalog, recovering
from repro.geo import goes_geostationary
from repro.ingest import GOESImager, SyntheticEarth, western_us_sector
from repro.server import DSMSServer, StreamCatalog

from tests.conftest import hook_stream

DAY_T0 = 72_000.0
QUERY = "reflectance(goes.vis)"

if "CHAOS_SEED" in os.environ:
    SEEDS = (int(os.environ["CHAOS_SEED"]),)
else:
    SEEDS = (101, 202, 303, 404, 505)


def make_imager() -> GOESImager:
    """A tiny single-band imager: 3 frames of 16x8 — fast per-example."""
    crs = goes_geostationary(-135.0)
    return GOESImager(
        scene=SyntheticEarth(seed=5),
        sector_lattice=western_us_sector(crs, width=16, height=8),
        n_frames=3,
        t0=DAY_T0,
    )


def make_catalog() -> StreamCatalog:
    catalog = StreamCatalog()
    catalog.register_imager(make_imager())
    return catalog


def run_query(catalog, ctx=None):
    server = DSMSServer(catalog, recovery=ctx)
    session = server.register(QUERY, encode_png=False)
    if ctx is None:
        server.run()
    else:
        with recovering(ctx):
            server.run()
    return session


@pytest.fixture(scope="module")
def baseline_frames():
    """Fault-free frames keyed by timestamp (the equivalence oracle)."""
    session = run_query(make_catalog())
    assert len(session.frames) == 3
    return {f.image.t: f.image for f in session.frames}


class TestChaosPerKind:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_single_fault_kind(self, kind, seed, baseline_frames):
        spec = FaultSpec.single(kind, seed=seed)
        hardened, injector, ctx = harden_catalog(make_catalog(), spec)
        with obs.observe() as ob:
            session = run_query(hardened, ctx)

        # The spec's one active kind actually fired.
        assert injector.counts[kind] > 0, f"{kind}@{seed} injected nothing"
        for other in FAULT_KINDS:
            if other != kind:
                assert injector.counts[other] == 0

        # Surviving frames are bit-identical to the fault-free baseline.
        for frame in session.frames:
            t = frame.image.t
            assert t in baseline_frames, f"{kind}@{seed}: unknown frame t={t}"
            assert np.array_equal(frame.image.values, baseline_frames[t].values), (
                f"{kind}@{seed}: delivered frame at t={t} differs from baseline"
            )

        # Counters equal the injector's bookkeeping exactly.
        counter = ob.registry.counter("repro_faults_injected_total", kind=kind)
        assert counter.value == injector.counts[kind]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_default_spec_all_kinds_at_once(self, seed, baseline_frames):
        """The combined default spec survives too — frames stay exact."""
        spec = FaultSpec.default(seed=seed)
        hardened, injector, ctx = harden_catalog(make_catalog(), spec)
        with obs.observe() as ob:
            session = run_query(hardened, ctx)

        assert sum(injector.counts.values()) > 0
        for frame in session.frames:
            t = frame.image.t
            assert t in baseline_frames
            assert np.array_equal(frame.image.values, baseline_frames[t].values)
        for kind, n in injector.counts.items():
            counter = ob.registry.counter("repro_faults_injected_total", kind=kind)
            assert counter.value == n


class TestChaosInvariants:
    def test_zero_spec_is_identity(self, baseline_frames):
        """A no-op spec delivers the full baseline, injecting nothing."""
        spec = FaultSpec(seed=123)
        hardened, injector, ctx = harden_catalog(make_catalog(), spec)
        session = run_query(hardened, ctx)
        assert sum(injector.counts.values()) == 0
        assert len(ctx.dead_letter) == 0
        assert len(session.frames) == len(baseline_frames)
        for frame in session.frames:
            assert np.array_equal(
                frame.image.values, baseline_frames[frame.image.t].values
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_run_is_deterministic(self, seed):
        """Same spec, same seed -> identical injections and deliveries."""

        def one_run():
            hardened, injector, ctx = harden_catalog(
                make_catalog(), FaultSpec.default(seed=seed)
            )
            session = run_query(hardened, ctx)
            frames = [(f.image.t, f.image.values.tobytes()) for f in session.frames]
            return dict(injector.counts), frames, dict(ctx.dead_letter.by_reason)

        assert one_run() == one_run()

    def test_dead_letter_explains_missing_frames(self, baseline_frames):
        """Whenever frames go missing, the dead-letter sink says why."""
        spec = FaultSpec.single("drop", seed=SEEDS[0])
        hardened, injector, ctx = harden_catalog(make_catalog(), spec)
        session = run_query(hardened, ctx)
        missing = len(baseline_frames) - len(session.frames)
        if missing:
            assert ctx.dead_letter.by_reason.get("incomplete-frame", 0) > 0


# -- epoch hot swap under chaos ---------------------------------------------------


def swap_query_text() -> str:
    """Restriction-on-top, registered unoptimized: the replan reorders it."""
    box = make_imager().sector_lattice.bbox
    return (
        "within(reflectance(goes.vis), "
        f"bbox({box.xmin + box.width * 0.2!r}, {box.ymin + box.height * 0.2!r}, "
        f"{box.xmin + box.width * 0.8!r}, {box.ymin + box.height * 0.8!r}, "
        "crs='geos:-135'))"
    )


@pytest.fixture(scope="module")
def swap_baseline_frames():
    """Fault-free, swap-free frames for the swap query (the oracle)."""
    server = DSMSServer(make_catalog(), optimize_queries=False)
    session = server.register(swap_query_text(), encode_png=False)
    server.run()
    assert len(session.frames) == 3
    return {f.image.t: f.image for f in session.frames}


def run_swapped_query(hardened, ctx, swap_at):
    """Drive the swap query with a replan fired ``swap_at`` chunks in.

    The hook wraps the *faulted* streams, so the swap request lands in
    the middle of whatever the fault kind is doing to the feed.
    """
    box = {}

    def fire():
        box["queued"] = box["server"].request_replan(
            box["session"], reason="chaos-swap"
        )

    wrapped = StreamCatalog()
    for sid, stream in hardened.items():
        wrapped.register(hook_stream(stream, swap_at, fire), hardened.extent(sid))
    server = DSMSServer(wrapped, optimize_queries=False, recovery=ctx)
    session = server.register(swap_query_text(), encode_png=False)
    box["server"], box["session"] = server, session
    with recovering(ctx):
        server.run()
    assert box.get("queued") is True, "the mid-run replan must have queued"
    return server, session


class TestChaosWithEpochSwap:
    """A hot swap committed mid-fault never corrupts delivery.

    Same contract as the plain chaos legs — surviving frames bit-identical
    to the fault-free baseline, counters exactly equal to the injector's
    bookkeeping — with an epoch swap landing in the middle of the faulted
    scan. Additionally: frame sequence numbers stay contiguous and epoch
    stamps stay monotone across the swap, whatever the fault kind did.
    """

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_swap_under_each_fault_kind(self, kind, seed, swap_baseline_frames):
        spec = FaultSpec.single(kind, seed=seed)
        hardened, injector, ctx = harden_catalog(make_catalog(), spec)
        with obs.observe() as ob:
            server, session = run_swapped_query(hardened, ctx, swap_at=5)

        assert injector.counts[kind] > 0, f"{kind}@{seed} injected nothing"
        for frame in session.frames:
            t = frame.image.t
            assert t in swap_baseline_frames, f"{kind}@{seed}: unknown frame t={t}"
            assert np.array_equal(
                frame.image.values, swap_baseline_frames[t].values
            ), f"{kind}@{seed}: delivered frame at t={t} differs from baseline"
        assert [f.seq for f in session.frames] == list(range(len(session.frames)))
        epochs = [f.epoch for f in session.frames]
        assert epochs == sorted(epochs), f"{kind}@{seed}: epochs interleaved"

        counter = ob.registry.counter("repro_faults_injected_total", kind=kind)
        assert counter.value == injector.counts[kind]
        swaps = ob.registry.counter("repro_plan_epoch_swaps_total").value
        assert swaps == len(server.swap_log)
        if server.swap_log:  # a boundary followed the request: swap landed
            assert server.epoch_of(session) == 2
            assert server.selfcheck().ok

    # All fire points sit before the last frame: a swap requested during
    # the final frame has no later chunk left to commit at (it stays
    # pending, by design), so it would not exercise the cutover.
    @pytest.mark.parametrize("swap_at", (3, 7, 12))
    def test_swap_mid_stall_commits_and_recovers(self, swap_at, swap_baseline_frames):
        """The issue's headline case: the swap lands during a stall storm."""
        spec = FaultSpec.single("stall", seed=SEEDS[0])
        hardened, injector, ctx = harden_catalog(make_catalog(), spec)
        server, session = run_swapped_query(hardened, ctx, swap_at=swap_at)

        assert injector.counts["stall"] > 0
        assert len(server.swap_log) == 1
        assert server.epoch_of(session) == 2
        epochs = [f.epoch for f in session.frames]
        assert epochs == sorted(epochs)
        for frame in session.frames:
            assert np.array_equal(
                frame.image.values, swap_baseline_frames[frame.image.t].values
            )
        assert server.selfcheck().ok
