"""Value transforms (Def. 8): pointwise vs frame-buffered costs."""

import numpy as np
import pytest

from repro.core import GRAY8, REFLECTANCE
from repro.errors import OperatorError
from repro.ingest import LidarScanner
from repro.operators import (
    ColorToGray,
    CountsToReflectance,
    FrameStretch,
    PointwiseTransform,
    Rescale,
)


class TestPointwise:
    def test_rescale(self, small_imager):
        stream = small_imager.stream("vis")
        src = stream.collect_frames()[0]
        out = stream.pipe(Rescale(2.0, 1.0)).collect_frames()[0]
        np.testing.assert_allclose(out.values, src.values.astype(np.float32) * 2.0 + 1.0)

    def test_counts_to_reflectance(self, small_imager):
        out = small_imager.stream("vis").pipe(CountsToReflectance(bits=10)).collect_frames()[0]
        assert out.values.dtype == np.float32
        assert out.values.min() >= 0.0 and out.values.max() <= 1.0

    def test_nonblocking(self, small_imager):
        """Section 3.2: pointwise f_val allows point-by-point processing."""
        op = Rescale(0.5)
        small_imager.stream("vis").pipe(op).count_points()
        assert op.stats.is_nonblocking
        assert op.stats.points_in == op.stats.points_out

    def test_custom_function_and_value_set(self, small_imager):
        op = PointwiseTransform(
            lambda v: v.astype(np.float32) / 1023.0, output_value_set=REFLECTANCE
        )
        out = small_imager.stream("vis").pipe(op)
        assert out.metadata.value_set == REFLECTANCE

    def test_band_rename(self, small_imager):
        op = PointwiseTransform(lambda v: v, band="renamed")
        chunk = small_imager.stream("vis").pipe(op).collect_chunks(limit=1)[0]
        assert chunk.band == "renamed"

    def test_point_stream_supported(self, scene):
        lidar = LidarScanner(scene=scene, n_points=100, points_per_chunk=100)
        out = lidar.stream().pipe(Rescale(0.001)).collect_chunks()[0]
        assert out.values.max() <= 3.0

    def test_color_to_gray(self, latlon_lattice):
        from repro.core import FLOAT32, GeoStream, GridChunk, Organization, RGB8, StreamMetadata
        from repro.geo import LATLON

        rgb = np.zeros(latlon_lattice.shape + (3,), dtype=np.uint8)
        rgb[..., 0] = 255  # pure red
        meta = StreamMetadata("rgb", "rgb", LATLON, Organization.IMAGE_BY_IMAGE, RGB8)
        stream = GeoStream.from_chunks(meta, [GridChunk(rgb, latlon_lattice, "rgb", 0.0)])
        out = stream.pipe(ColorToGray()).collect_chunks()[0]
        assert out.values.shape == latlon_lattice.shape
        np.testing.assert_allclose(out.values, 0.299 * 255, rtol=1e-5)

    def test_color_to_gray_rejects_scalar(self, small_imager):
        with pytest.raises(OperatorError):
            small_imager.stream("vis").pipe(ColorToGray()).collect_chunks()


class TestFrameStretch:
    @pytest.mark.parametrize("kind", ["linear", "equalize", "gaussian"])
    def test_output_range_and_dtype(self, small_imager, kind):
        out = small_imager.stream("vis").pipe(FrameStretch(kind)).collect_frames()
        assert len(out) == 2
        for img in out:
            assert img.values.dtype == np.uint8
            assert img.values.min() >= 0 and img.values.max() <= 255

    def test_linear_uses_full_range_per_frame(self, small_imager):
        out = small_imager.stream("vis").pipe(FrameStretch("linear")).collect_frames()
        for img in out:
            assert img.values.min() == 0
            assert img.values.max() == 255

    def test_buffers_exactly_one_frame(self, small_imager):
        """Section 3.2: cost determined by the size of the largest frame."""
        op = FrameStretch("linear")
        small_imager.stream("vis").pipe(op).count_points()
        frame_points = small_imager.sector_lattice.n_points
        assert op.stats.max_buffered_points == frame_points
        # Buffer fully drains after each frame.
        assert op.stats.buffered_points == 0

    def test_frame_results_independent(self, small_imager):
        """Stretching runs per frame, not over the whole stream."""
        stream = small_imager.stream("vis")
        stretched = stream.pipe(FrameStretch("linear")).collect_frames()
        raw = stream.collect_frames()
        # Frame 1 scaled by its own min/max, not frame 0's.
        r = raw[1].values.astype(float)
        expected = (r - r.min()) / (r.max() - r.min()) * 255.0
        np.testing.assert_allclose(stretched[1].values, np.rint(expected), atol=1.0)

    def test_equalize_flattens_histogram(self, small_imager):
        out = small_imager.stream("vis").pipe(FrameStretch("equalize")).collect_frames()[0]
        std = np.std(out.values.astype(float))
        assert std > 55.0  # near-uniform (73.6) rather than concentrated

    def test_unknown_kind_rejected(self):
        with pytest.raises(OperatorError):
            FrameStretch("sigmoid")

    def test_point_stream_rejected(self, scene):
        lidar = LidarScanner(scene=scene, n_points=100, points_per_chunk=100)
        with pytest.raises(OperatorError):
            lidar.stream().pipe(FrameStretch("linear")).collect_chunks()

    def test_metadata_value_set(self, small_imager):
        out = small_imager.stream("vis").pipe(FrameStretch("linear"))
        assert out.metadata.value_set == GRAY8

    def test_flush_emits_partial_frame(self, latlon_lattice):
        """A stream ending mid-frame still emits on flush."""
        from repro.core import FLOAT32, GeoStream, GridChunk, FrameInfo, Organization, StreamMetadata
        from repro.geo import LATLON

        info = FrameInfo(0, latlon_lattice)
        rows = [
            GridChunk(
                np.full((1, latlon_lattice.width), float(r)),
                latlon_lattice.row_lattice(r),
                "b",
                float(r),
                frame=info,
                row0=r,
                last_in_frame=False,  # never marked last
            )
            for r in range(3)
        ]
        meta = StreamMetadata("x", "b", LATLON, Organization.ROW_BY_ROW, FLOAT32)
        stream = GeoStream.from_chunks(meta, rows)
        out = stream.pipe(FrameStretch("linear")).collect_chunks()
        assert len(out) == 3  # flushed at end of stream
