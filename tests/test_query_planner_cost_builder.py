"""Planner lowering, cost model predictions, and the fluent builder."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.geo import BoundingBox, utm
from repro.query import Q, ast as q, estimate_query, parse_query, plan_query


def subbox(imager, fx0, fy0, fx1, fy1):
    box = imager.sector_lattice.bbox
    return BoundingBox(
        box.xmin + box.width * fx0,
        box.ymin + box.height * fy0,
        box.xmin + box.width * fx1,
        box.ymin + box.height * fy1,
        box.crs,
    )


@pytest.fixture()
def sources(catalog):
    return {sid: catalog.get(sid) for sid in catalog.ids()}


@pytest.fixture()
def profiles(catalog):
    return catalog.profiles()


class TestPlanner:
    def test_stream_ref_resolution(self, sources):
        out = plan_query(q.StreamRef("goes.vis"), sources)
        assert out.stream_id == "goes.vis"

    def test_unknown_stream(self, sources):
        with pytest.raises(PlanError):
            plan_query(q.StreamRef("nope"), sources)

    def test_callable_catalog(self, sources):
        out = plan_query(q.StreamRef("goes.vis"), lambda sid: sources[sid])
        assert out.count_points() > 0

    def test_every_node_type_lowers(self, small_imager, sources):
        region = subbox(small_imager, 0.2, 0.2, 0.8, 0.8)
        tree = (
            Q.ndvi("goes.nir", "goes.vis")
            .stretch("linear")
            .magnify(2)
            .coarsen(2)
            .within(region)
            .build()
        )
        out = plan_query(tree, sources)
        frames = out.collect_frames()
        assert len(frames) == 2

    def test_region_crs_safety_net(self, small_imager, sources):
        """A region in the wrong CRS is transformed rather than crashing."""
        geo_region = BoundingBox(-125.0, 32.0, -112.0, 45.0)  # latlon
        tree = q.SpatialRestrict(q.StreamRef("goes.vis"), geo_region)
        out = plan_query(tree, sources)
        assert out.count_points() > 0

    def test_parse_plan_execute_roundtrip(self, small_imager, sources):
        box = subbox(small_imager, 0.3, 0.3, 0.7, 0.7)
        text = (
            f"within(reflectance(goes.vis), bbox({box.xmin}, {box.ymin}, "
            f"{box.xmax}, {box.ymax}, crs='geos:-135'))"
        )
        out = plan_query(parse_query(text), sources)
        frames = out.collect_frames()
        assert frames and frames[0].values.max() <= 1.0

    def test_fresh_operators_per_plan(self, sources):
        tree = q.Stretch(q.StreamRef("goes.vis"), "linear")
        a = plan_query(tree, sources)
        b = plan_query(tree, sources)
        ops_a = getattr(a, "pipeline_operators")
        ops_b = getattr(b, "pipeline_operators")
        assert ops_a[0] is not ops_b[0]

    def test_ndvi_gamma_lowering(self, sources):
        tree = q.Compose(
            q.ValueMap(q.StreamRef("goes.nir"), "reflectance", (("bits", 10.0),)),
            q.ValueMap(q.StreamRef("goes.vis"), "reflectance", (("bits", 10.0),)),
            "ndvi",
        )
        out = plan_query(tree, sources)
        frame = out.collect_frames()[0]
        finite = frame.values[np.isfinite(frame.values)]
        assert finite.min() >= -1.0 and finite.max() <= 1.0


class TestBuilder:
    def test_builder_matches_parser(self, small_imager):
        region = subbox(small_imager, 0.2, 0.2, 0.8, 0.8)
        built = (
            Q.ndvi("goes.nir", "goes.vis").stretch("linear").within(region).build()
        )
        assert isinstance(built, q.SpatialRestrict)
        assert isinstance(built.child, q.Stretch)
        assert built.child.child.gamma == "ndvi"

    def test_arithmetic_operators(self):
        tree = (Q.stream("a") - Q.stream("b")).build()
        assert tree == q.Compose(q.StreamRef("a"), q.StreamRef("b"), "-")
        tree = (Q.stream("a") / Q.stream("b")).build()
        assert tree.gamma == "/"

    def test_temporal_builders(self):
        assert isinstance(Q.stream("s").during(0, 10).build(), q.TemporalRestrict)
        assert Q.stream("s").sectors(1, 3).build().on_sector
        daily = Q.stream("s").daily(100.0, 200.0).build()
        assert daily.timeset.contains_scalar(86_400.0 + 150.0)

    def test_transforms_chain(self):
        tree = Q.stream("s").reflectance(8).rescale(2.0, 1.0).magnify(3).build()
        assert isinstance(tree, q.Magnify) and tree.k == 3
        assert tree.child.kind == "rescale"
        assert tree.child.child.kind == "reflectance"

    def test_aggregates(self, small_imager):
        region = subbox(small_imager, 0, 0, 1, 1)
        tree = Q.stream("s").temporal_agg("max", 3).build()
        assert isinstance(tree, q.TemporalAgg)
        tree = Q.stream("s").region_agg({"roi": region}, "mean").build()
        assert isinstance(tree, q.RegionAgg)

    def test_reproject(self):
        tree = Q.stream("s").reproject(utm(10), "bicubic").build()
        assert tree.dst_crs == utm(10) and tree.method == "bicubic"


class TestCostModel:
    def test_source_profile_required(self, profiles):
        with pytest.raises(PlanError):
            estimate_query(q.StreamRef("missing"), profiles)

    def test_restriction_selectivity(self, small_imager, profiles):
        region = subbox(small_imager, 0.0, 0.0, 0.5, 0.5)
        tree = q.SpatialRestrict(q.StreamRef("goes.vis"), region)
        est, _ = estimate_query(tree, profiles)
        full = profiles["goes.vis"].frame_points
        assert est.points == pytest.approx(full * 0.25, rel=0.1)

    def test_stretch_buffer_is_frame(self, profiles):
        tree = q.Stretch(q.StreamRef("goes.vis"), "linear")
        est, breakdown = estimate_query(tree, profiles)
        assert est.max_op_buffer == profiles["goes.vis"].frame_points
        stretch_cost = [b for b in breakdown if isinstance(b.node, q.Stretch)][0]
        assert stretch_cost.op_buffer == profiles["goes.vis"].frame_points

    def test_coarsen_buffer_is_k_rows(self, profiles):
        tree = q.Coarsen(q.StreamRef("goes.vis"), 4)
        est, _ = estimate_query(tree, profiles)
        assert est.max_op_buffer == 4 * profiles["goes.vis"].row_width

    def test_magnify_scales_points(self, profiles):
        tree = q.Magnify(q.StreamRef("goes.vis"), 3)
        est, _ = estimate_query(tree, profiles)
        assert est.points == profiles["goes.vis"].frame_points * 9

    def test_compose_row_vs_image_buffer(self, small_imager, profiles):
        from dataclasses import replace

        from repro.core import Organization

        tree = q.Compose(q.StreamRef("goes.nir"), q.StreamRef("goes.vis"), "-")
        est_row, _ = estimate_query(tree, profiles)
        assert est_row.max_op_buffer == profiles["goes.vis"].row_width
        image_profiles = {
            k: replace(p, organization=Organization.IMAGE_BY_IMAGE)
            for k, p in profiles.items()
        }
        est_img, _ = estimate_query(tree, image_profiles)
        assert est_img.max_op_buffer == profiles["goes.vis"].frame_points

    def test_pushdown_reduces_estimated_work(self, small_imager, profiles, catalog):
        """The optimizer's chosen plan must look cheaper to the model too."""
        from repro.query import optimize

        region = subbox(small_imager, 0.1, 0.1, 0.3, 0.3)
        tree = q.SpatialRestrict(
            q.Stretch(
                q.Compose(q.StreamRef("goes.nir"), q.StreamRef("goes.vis"), "ndvi"),
                "linear",
            ),
            region,
        )
        optimized = optimize(tree, dict(catalog.crs_of())).node
        est_naive, _ = estimate_query(tree, profiles)
        est_opt, _ = estimate_query(optimized, profiles)
        assert est_opt.work < est_naive.work * 0.5
        assert est_opt.buffer < est_naive.buffer * 0.5

    def test_temporal_agg_buffer(self, profiles):
        tree = q.TemporalAgg(q.StreamRef("goes.vis"), "mean", 3)
        est, _ = estimate_query(tree, profiles)
        assert est.max_op_buffer == 3 * profiles["goes.vis"].frame_points

    def test_region_agg_output_points(self, small_imager, profiles):
        region = subbox(small_imager, 0, 0, 1, 1)
        tree = q.RegionAgg(q.StreamRef("goes.vis"), (("a", region), ("b", region)), "mean")
        est, _ = estimate_query(tree, profiles)
        assert est.points == 2.0


class TestBuilderEdges:
    def test_wrap_existing_node(self):
        node = q.StreamRef("s")
        assert Q.wrap(node).build() is node

    def test_compose_accepts_node_or_builder(self):
        left = Q.stream("a")
        as_builder = left.compose(Q.stream("b"), "sup").build()
        as_node = left.compose(q.StreamRef("b"), "sup").build()
        assert as_builder == as_node

    def test_compose_rejects_other_types(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            Q.stream("a").compose("not-a-node", "+")

    def test_when_with_custom_timeset(self):
        from repro.core import TimeInstants

        tree = Q.stream("s").when(TimeInstants((1.0, 2.0)), on_sector=True).build()
        assert tree.on_sector
        assert tree.timeset.contains_scalar(2.0)


class TestCostEmpty:
    def test_empty_costs_nothing(self, profiles):
        est, breakdown = estimate_query(q.Empty("x"), profiles)
        assert est.points == 0.0 and est.work == 0.0 and est.buffer == 0.0
        assert len(breakdown) == 1

    def test_restriction_of_empty(self, profiles, small_imager):
        region = subbox(small_imager, 0, 0, 1, 1)
        est, _ = estimate_query(q.SpatialRestrict(q.Empty(), region), profiles)
        assert est.points == 0.0
