"""The telemetry HTTP endpoint and the ``repro top`` renderer.

One DSMS run under full observability backs a module-scoped
:class:`TelemetryServer`; every test then talks to it over real HTTP
(loopback, ephemeral port) so routing, headers, and JSON serialization
are all exercised end to end. The payload schemas asserted here are the
wire contract `repro top --url` depends on — treat key changes as
breaking.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.geo import goes_geostationary
from repro.ingest import GOESImager, SyntheticEarth, western_us_sector
from repro.obs import MetricStore
from repro.server import DSMSServer, StreamCatalog
from repro.server.telemetry import (
    events_payload,
    fetch_json,
    render_top,
    sparkline,
    timeseries_payload,
    trace_payload,
)

DAY_T0 = 72_000.0


def make_catalog() -> StreamCatalog:
    crs = goes_geostationary(-135.0)
    imager = GOESImager(
        scene=SyntheticEarth(seed=5),
        sector_lattice=western_us_sector(crs, width=16, height=8),
        n_frames=3,
        t0=DAY_T0,
    )
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    return catalog


@pytest.fixture(scope="module")
def endpoint():
    """One observed DSMS run served over HTTP for the whole module."""
    with obs.observe(store=MetricStore(cadence_s=30.0), journal=True, frame_trace=True):
        server = DSMSServer(make_catalog())
        server.register("reflectance(goes.vis)", encode_png=False)
        with server.serve_telemetry() as telemetry:
            server.run()
            yield telemetry


def get_raw(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, dict(response.headers), response.read()


class TestEndpoints:
    def test_index_lists_endpoints(self, endpoint):
        doc = fetch_json(endpoint.url + "/")
        assert doc["service"] == "repro.telemetry"
        assert "/health" in doc["endpoints"]
        assert "/metrics" in doc["endpoints"]

    def test_metrics_is_prometheus_text_with_build_info(self, endpoint):
        status, headers, body = get_raw(endpoint.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = body.decode("utf-8")
        assert "# HELP repro_build_info" in text
        assert "# TYPE repro_build_info gauge" in text
        assert 'repro_build_info{' in text
        assert "dsms_chunks_scanned_total" in text

    def test_health_round_trip(self, endpoint):
        doc = fetch_json(endpoint.url + "/health")
        assert set(doc) == {
            "verdict",
            "reasons",
            "queries",
            "at",
            "dead_letters",
            "shed_pressure",
            "recent_swaps",
        }
        assert doc["verdict"] in ("healthy", "degraded", "unhealthy")
        [query] = doc["queries"]
        assert set(query) == {
            "query",
            "verdict",
            "reasons",
            "lag_s",
            "watermark",
            "epoch",
            "breaches",
        }
        assert query["query"] == 1
        assert doc["at"] >= DAY_T0

    def test_timeseries_round_trip(self, endpoint):
        doc = fetch_json(endpoint.url + "/timeseries?window=5")
        assert doc["samples_taken"] > 0
        assert doc["series"], "the observed run must have sampled series"
        for series in doc["series"]:
            assert set(series) == {"name", "labels", "kind", "points", "rollup"}
            for point in series["points"]:
                t, v = point
                assert t >= DAY_T0
            if series["rollup"] is not None:
                assert series["rollup"]["window"] <= 5
        names = {s["name"] for s in doc["series"]}
        assert "dsms_chunks_scanned_total" in names

    def test_timeseries_name_filter(self, endpoint):
        doc = fetch_json(endpoint.url + "/timeseries?name=dsms_chunks_scanned_total")
        assert doc["series"]
        assert {s["name"] for s in doc["series"]} == {"dsms_chunks_scanned_total"}

    def test_events_round_trip_and_filters(self, endpoint):
        doc = fetch_json(endpoint.url + "/events")
        assert set(doc) == {"capacity", "total", "events"}
        assert doc["total"] >= len(doc["events"]) > 0
        for event in doc["events"]:
            assert set(event) == {"seq", "t", "kind", "query", "epoch", "reason", "link"}
        seqs = [e["seq"] for e in doc["events"]]
        assert seqs == sorted(seqs)
        # kind filter + limit narrow the same stream.
        installs = fetch_json(endpoint.url + "/events?kind=epoch-install")
        assert {e["kind"] for e in installs["events"]} == {"epoch-install"}
        limited = fetch_json(endpoint.url + "/events?limit=1")
        assert len(limited["events"]) == 1
        assert limited["events"][0]["seq"] == seqs[-1]
        since = fetch_json(endpoint.url + f"/events?since={seqs[0]}")
        assert [e["seq"] for e in since["events"]] == seqs[1:]

    def test_trace_lookup_and_404(self, endpoint):
        recorder = obs.current_frame_tracer().recorder
        traces = [t for q in recorder.queries() for t in recorder.recent(q)]
        traces.extend(recorder.pinned)
        assert traces, "frame tracing was on; the run must have recorded"
        doc = fetch_json(endpoint.url + f"/traces/{traces[0].trace_id}")
        assert doc["trace_id"] == traces[0].trace_id or traces[0].trace_id in doc["trace_ids"]
        with pytest.raises(urllib.error.HTTPError) as err:
            fetch_json(endpoint.url + "/traces/999999")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            fetch_json(endpoint.url + "/traces/not-a-number")
        assert err.value.code == 400

    def test_unknown_endpoint_404s_as_json(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as err:
            fetch_json(endpoint.url + "/nope")
        assert err.value.code == 404
        body = json.loads(err.value.read().decode("utf-8"))
        assert "unknown endpoint" in body["error"]

    def test_render_top_against_live_payloads(self, endpoint):
        health = fetch_json(endpoint.url + "/health")
        timeseries = fetch_json(endpoint.url + "/timeseries?window=10")
        events = fetch_json(endpoint.url + "/events?limit=5")["events"]
        text = render_top(health, timeseries, events, color=False, source=endpoint.url)
        assert "repro top" in text
        assert endpoint.url in text
        assert "q1" in text
        assert "recent events" in text
        assert "\x1b[" not in text  # --no-color means no ANSI at all
        colored = render_top(health, timeseries, events, color=True)
        assert "\x1b[" in colored


class TestPayloadBuilders:
    def test_none_store_and_journal_keep_schema(self):
        empty = timeseries_payload(None)
        assert empty == {
            "capacity": 0,
            "cadence_s": 0.0,
            "samples_taken": 0,
            "last_t": None,
            "series": [],
        }
        assert events_payload(None) == {"capacity": 0, "total": 0, "events": []}
        assert trace_payload(None, 1) is None


class TestSparkline:
    def test_fixed_width_and_monotone_glyphs(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0], width=8)
        assert len(line) == 8
        assert line.startswith(" " * 4)
        glyphs = line.strip()
        assert glyphs[0] == "▁" and glyphs[-1] == "█"
        assert [ord(g) for g in glyphs] == sorted(ord(g) for g in glyphs)

    def test_flat_series_and_empty(self):
        assert sparkline([], width=6) == " " * 6
        flat = sparkline([5.0, 5.0, 5.0], width=3)
        assert flat == "▁▁▁"

    def test_window_clips_to_width(self):
        line = sparkline([float(i) for i in range(100)], width=10)
        assert len(line) == 10
        assert line[-1] == "█"
