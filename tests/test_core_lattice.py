"""Point lattices (Def. 1): georeferencing, windows, alignment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GridLattice
from repro.errors import LatticeAlignmentError, LatticeError
from repro.geo import LATLON, BoundingBox


def make_lattice(**kw):
    defaults = dict(crs=LATLON, x0=-124.0, y0=42.0, dx=0.1, dy=-0.1, width=40, height=20)
    defaults.update(kw)
    return GridLattice(**defaults)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(LatticeError):
            make_lattice(width=0)

    def test_zero_resolution_rejected(self):
        with pytest.raises(LatticeError):
            make_lattice(dx=0.0)

    def test_shape_matches_numpy_order(self):
        lat = make_lattice()
        assert lat.shape == (20, 40)
        assert lat.n_points == 800


class TestGeoreferencing:
    def test_pixel_center_convention(self):
        lat = make_lattice()
        assert float(lat.x_of_col(0)) == -124.0
        assert float(lat.y_of_row(0)) == 42.0
        assert float(lat.x_of_col(1)) == pytest.approx(-123.9)
        assert float(lat.y_of_row(1)) == pytest.approx(41.9)

    def test_meshgrid_shapes(self):
        lat = make_lattice()
        x, y = lat.meshgrid()
        assert x.shape == (20, 40) and y.shape == (20, 40)
        assert float(x[0, 0]) == -124.0 and float(y[0, 0]) == 42.0

    @given(
        row=st.integers(0, 19),
        col=st.integers(0, 39),
    )
    @settings(max_examples=40, deadline=None)
    def test_index_coordinate_roundtrip(self, row, col):
        lat = make_lattice()
        x = float(lat.x_of_col(col))
        y = float(lat.y_of_row(row))
        assert int(lat.col_of_x(x)) == col
        assert int(lat.row_of_y(y)) == row

    def test_fractional_coordinates(self):
        lat = make_lattice()
        assert float(lat.fractional_col(-123.95)) == pytest.approx(0.5)
        assert float(lat.fractional_row(41.95)) == pytest.approx(0.5)

    def test_bbox_covers_pixel_areas(self):
        lat = make_lattice(width=2, height=2)
        b = lat.bbox
        assert b.xmin == pytest.approx(-124.05)
        assert b.xmax == pytest.approx(-123.85)
        assert b.ymax == pytest.approx(42.05)
        assert b.ymin == pytest.approx(41.85)

    def test_center_bbox_smaller_than_bbox(self):
        lat = make_lattice()
        assert lat.bbox.contains_box(lat.center_bbox)


class TestWindows:
    def test_window_georeferencing(self):
        lat = make_lattice()
        w = lat.window(2, 3, 5, 7)
        assert w.shape == (5, 7)
        assert float(w.x_of_col(0)) == pytest.approx(float(lat.x_of_col(3)))
        assert float(w.y_of_row(0)) == pytest.approx(float(lat.y_of_row(2)))

    def test_row_lattice(self):
        lat = make_lattice()
        r = lat.row_lattice(5)
        assert r.shape == (1, 40)
        assert float(r.y_of_row(0)) == pytest.approx(float(lat.y_of_row(5)))

    def test_intersect_window_full(self):
        lat = make_lattice()
        w = lat.intersect_window(lat.bbox)
        assert w == (0, 0, 20, 40)

    def test_intersect_window_partial(self):
        lat = make_lattice()
        box = BoundingBox(-123.0, 41.0, -122.0, 41.5, LATLON)
        row0, col0, nrows, ncols = lat.intersect_window(box)
        # Columns with centers in [-123, -122]: cols 10..20 inclusive.
        assert (col0, ncols) == (10, 11)
        # Rows with centers in [41, 41.5]: rows 5..10 inclusive.
        assert (row0, nrows) == (5, 6)

    def test_intersect_window_disjoint(self):
        lat = make_lattice()
        assert lat.intersect_window(BoundingBox(0.0, 0.0, 1.0, 1.0, LATLON)) is None


class TestDerivedLattices:
    def test_magnified_geometry(self):
        lat = make_lattice()
        m = lat.magnified(3)
        assert m.shape == (60, 120)
        assert abs(m.dx) == pytest.approx(abs(lat.dx) / 3)
        # Same outer extent.
        assert m.bbox.xmin == pytest.approx(lat.bbox.xmin)
        assert m.bbox.xmax == pytest.approx(lat.bbox.xmax)

    def test_coarsened_geometry(self):
        lat = make_lattice()
        c = lat.coarsened(4)
        assert c.shape == (5, 10)
        assert abs(c.dx) == pytest.approx(abs(lat.dx) * 4)
        # First coarse pixel center = mean of first 4x4 fine centers.
        assert float(c.x_of_col(0)) == pytest.approx(
            float(np.mean(lat.xs()[:4]))
        )

    def test_coarsen_too_small_rejected(self):
        with pytest.raises(LatticeError):
            make_lattice(width=3, height=3).coarsened(4)

    @given(k=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_magnify_coarsen_inverse_shapes(self, k):
        lat = make_lattice()
        round_trip = lat.magnified(k).coarsened(k)
        assert round_trip.shape == lat.shape
        assert round_trip.aligned_with(lat)

    def test_from_bbox_covers(self):
        box = BoundingBox(-123.0, 40.0, -122.0, 41.0, LATLON)
        lat = GridLattice.from_bbox(box, 0.03, 0.03)
        assert lat.width >= 33 and lat.height >= 33
        # Every bbox-interior point is within the lattice extent.
        assert lat.bbox.contains_box(box) or lat.bbox.intersects(box)

    def test_from_bbox_negative_dy_means_north_up(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0, LATLON)
        lat = GridLattice.from_bbox(box, 0.1, -0.1)
        assert lat.dy < 0
        assert float(lat.y_of_row(0)) > float(lat.y_of_row(lat.height - 1))


class TestAlignment:
    def test_aligned_with_self(self):
        lat = make_lattice()
        assert lat.aligned_with(lat)

    def test_window_is_aligned(self):
        lat = make_lattice()
        assert lat.aligned_with(lat.window(3, 5, 2, 2))

    def test_different_resolution_not_aligned(self):
        assert not make_lattice().aligned_with(make_lattice(dx=0.05))

    def test_half_pixel_shift_not_aligned(self):
        assert not make_lattice().aligned_with(make_lattice(x0=-123.95))

    def test_different_crs_not_aligned(self):
        from repro.geo import utm

        other = make_lattice(crs=utm(10))
        assert not make_lattice().aligned_with(other)

    def test_offset_of(self):
        lat = make_lattice()
        w = lat.window(3, 5, 2, 2)
        assert lat.offset_of(w) == (3, 5)

    def test_offset_of_unaligned_raises(self):
        with pytest.raises(LatticeAlignmentError):
            make_lattice().offset_of(make_lattice(x0=-123.95))
