"""Spatial transforms (Def. 9, Fig. 2a): zoom costs and warp geometry."""

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.ingest import LidarScanner
from repro.operators import AffineTransform, AffineWarp, Coarsen, Magnify, Rotate


class TestMagnify:
    def test_pixel_replication(self, small_imager):
        stream = small_imager.stream("vis")
        src = stream.collect_frames()[0]
        out = stream.pipe(Magnify(3)).collect_frames()[0]
        assert out.shape == (src.shape[0] * 3, src.shape[1] * 3)
        # Each k x k block holds the source value.
        np.testing.assert_array_equal(out.values[0:3, 0:3], src.values[0, 0])
        np.testing.assert_array_equal(out.values[3:6, 3:6], src.values[1, 1])

    def test_zero_buffering(self, small_imager):
        """Fig. 2a: increasing resolution needs no neighboring points."""
        op = Magnify(2)
        small_imager.stream("vis").pipe(op).count_points()
        assert op.stats.is_nonblocking

    def test_same_extent(self, small_imager):
        stream = small_imager.stream("vis")
        src = stream.collect_frames()[0]
        out = stream.pipe(Magnify(2)).collect_frames()[0]
        assert out.lattice.bbox.xmin == pytest.approx(src.lattice.bbox.xmin)
        assert out.lattice.bbox.ymax == pytest.approx(src.lattice.bbox.ymax)

    def test_k1_passthrough(self, small_imager):
        op = Magnify(1)
        stream = small_imager.stream("vis")
        assert stream.pipe(op).count_points() == stream.count_points()

    def test_invalid_k(self):
        with pytest.raises(OperatorError):
            Magnify(0)

    def test_point_stream_rejected(self, scene):
        lidar = LidarScanner(scene=scene, n_points=50, points_per_chunk=50)
        with pytest.raises(OperatorError):
            lidar.stream().pipe(Magnify(2)).collect_chunks()


class TestCoarsen:
    def test_block_mean(self, small_imager):
        stream = small_imager.stream("vis")
        src = stream.collect_frames()[0]
        out = stream.pipe(Coarsen(4)).collect_frames()[0]
        assert out.shape == (src.shape[0] // 4, src.shape[1] // 4)
        expected = src.values[:4, :4].astype(float).mean()
        assert float(out.values[0, 0]) == pytest.approx(expected)

    def test_buffers_k_rows(self, small_imager):
        """Fig. 2a: decreasing resolution by 1/k buffers a k-row band."""
        for k in (2, 4, 8):
            op = Coarsen(k)
            small_imager.stream("vis").pipe(op).count_points()
            width = small_imager.sector_lattice.width
            assert op.stats.max_buffered_points == k * width

    def test_whole_frame_fast_path(self, scene, geos_crs):
        from repro.core import Organization
        from repro.ingest import GOESImager, western_us_sector

        sector = western_us_sector(geos_crs, width=32, height=16)
        imager = GOESImager(
            scene=scene, sector_lattice=sector, n_frames=1,
            organization=Organization.IMAGE_BY_IMAGE, t0=72_000.0,
        )
        op = Coarsen(4)
        out = imager.stream("vis").pipe(op).collect_frames()
        assert out[0].shape == (4, 8)
        assert op.stats.max_buffered_points == 0  # direct reduction

    def test_row_and_frame_paths_agree(self, scene, geos_crs):
        from repro.core import Organization
        from repro.ingest import GOESImager, western_us_sector

        sector = western_us_sector(geos_crs, width=32, height=16)
        kw = dict(scene=scene, sector_lattice=sector, n_frames=1, t0=72_000.0)
        by_rows = GOESImager(organization=Organization.ROW_BY_ROW, **kw)
        by_imgs = GOESImager(organization=Organization.IMAGE_BY_IMAGE, **kw)
        a = by_rows.stream("vis").pipe(Coarsen(4)).collect_frames()[0]
        b = by_imgs.stream("vis").pipe(Coarsen(4)).collect_frames()[0]
        np.testing.assert_allclose(a.values, b.values)
        assert a.lattice.aligned_with(b.lattice)

    def test_custom_reducer(self, small_imager):
        stream = small_imager.stream("vis")
        src = stream.collect_frames()[0]
        out = stream.pipe(Coarsen(4, reducer=np.max)).collect_frames()[0]
        assert float(out.values[0, 0]) == float(src.values[:4, :4].max())

    def test_trailing_rows_dropped(self, small_imager):
        # 48 rows coarsened by 5 -> 9 output rows, 3 rows dropped.
        out = small_imager.stream("vis").pipe(Coarsen(5)).collect_frames()[0]
        assert out.shape[0] == 9

    def test_metadata_frame_shape(self, small_imager):
        out = small_imager.stream("vis").pipe(Coarsen(4))
        assert out.metadata.max_frame_shape == (12, 24)


class TestAffine:
    def test_inverse_roundtrip(self):
        a = AffineTransform(2.0, 0.5, 3.0, -0.5, 1.5, -2.0)
        inv = a.inverse()
        x, y = np.array([1.0, 5.0]), np.array([2.0, -3.0])
        wx, wy = a.apply(x, y)
        bx, by = inv.apply(wx, wy)
        np.testing.assert_allclose(bx, x, atol=1e-12)
        np.testing.assert_allclose(by, y, atol=1e-12)

    def test_singular_rejected(self):
        with pytest.raises(OperatorError):
            AffineTransform(1.0, 2.0, 0.0, 2.0, 4.0, 0.0).inverse()

    def test_rotation_fixes_center(self):
        rot = AffineTransform.rotation(37.0, cx=5.0, cy=-3.0)
        x, y = rot.apply(np.array([5.0]), np.array([-3.0]))
        assert x.item() == pytest.approx(5.0)
        assert y.item() == pytest.approx(-3.0)

    def test_rotation_90(self):
        rot = AffineTransform.rotation(90.0)
        x, y = rot.apply(np.array([1.0]), np.array([0.0]))
        assert x.item() == pytest.approx(0.0, abs=1e-12)
        assert y.item() == pytest.approx(1.0)


class TestWarps:
    def test_rotate_buffers_full_frame(self, small_imager):
        op = Rotate(30.0)
        small_imager.stream("vis").pipe(op).collect_frames()
        assert op.stats.max_buffered_points == small_imager.sector_lattice.n_points

    def test_rotate_covers_rotated_extent(self, small_imager):
        stream = small_imager.stream("vis")
        src = stream.collect_frames()[0]
        out = stream.pipe(Rotate(45.0)).collect_frames()[0]
        # A 45-degree rotation enlarges the bounding box.
        assert out.shape[0] > src.shape[0]
        assert out.shape[1] > src.shape[1] * 0.7

    def test_rotate_zero_is_near_identity(self, small_imager):
        stream = small_imager.stream("vis")
        src = stream.collect_frames()[0]
        out = stream.pipe(Rotate(0.0)).collect_frames()[0]
        # Same grid, bilinear at exact centers: values identical.
        inner = out.values[1:-1, 1:-1]
        np.testing.assert_allclose(inner, src.values[1:-1, 1:-1].astype(np.float32), atol=1e-3)

    def test_rotate_360_equals_0(self, small_imager):
        stream = small_imager.stream("vis")
        a = stream.pipe(Rotate(0.0)).collect_frames()[0]
        b = stream.pipe(Rotate(360.0)).collect_frames()[0]
        np.testing.assert_allclose(a.values, b.values, atol=1e-6, equal_nan=True)

    def test_affine_warp_translation(self, small_imager):
        stream = small_imager.stream("vis")
        src = stream.collect_frames()[0]
        dx = src.lattice.dx * 2  # shift right by exactly two pixels
        op = AffineWarp(AffineTransform(1.0, 0.0, dx, 0.0, 1.0, 0.0))
        out = stream.pipe(op).collect_frames()[0]
        assert out.lattice.bbox.xmin == pytest.approx(src.lattice.bbox.xmin + dx, abs=abs(dx))
        # Content rides along with the georeference: output pixel j sits at
        # src center_j + dx and reads back the value of src pixel j.
        h = min(out.values.shape[0], src.values.shape[0])
        w = min(out.values.shape[1], src.values.shape[1])
        np.testing.assert_allclose(
            out.values[: h - 1, : w - 1],
            src.values.astype(np.float32)[: h - 1, : w - 1],
            atol=1e-3,
        )

    def test_corners_outside_are_fill(self, small_imager):
        out = small_imager.stream("vis").pipe(Rotate(45.0)).collect_frames()[0]
        assert np.isnan(out.values[0, 0])
        assert np.isnan(out.values[-1, -1])

    def test_point_stream_rejected(self, scene):
        lidar = LidarScanner(scene=scene, n_points=50, points_per_chunk=50)
        with pytest.raises(OperatorError):
            lidar.stream().pipe(Rotate(10.0)).collect_chunks()
