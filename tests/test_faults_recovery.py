"""Recovery mechanics, piece by piece.

The chaos suite (:mod:`test_faults_chaos`) checks end-to-end survival;
this module pins each recovery mechanism in isolation: the deterministic
backoff schedule, reconnect-without-duplicates, recovery exhaustion,
session checkpoint/restore, the dead-letter sink's exact contents, the
router's naive-index fallback, stall-driven shed escalation, and the
stream generator's poison-record quarantine.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import GeoStream, GridLattice, Organization
from repro.core.valueset import GRAY10
from repro.errors import RecoveryExhausted, SourceDisconnected, StreamError
from repro.faults import (
    BackoffPolicy,
    FaultInjector,
    FaultSpec,
    FrameGuard,
    RecoveryContext,
    SimClock,
    harden_catalog,
    recovering,
    resilient_stream,
)
from repro.geo import LATLON, goes_geostationary
from repro.index.naive import NaiveRegionIndex
from repro.ingest import GOESImager, SyntheticEarth, western_us_sector
from repro.ingest.generator import StreamGenerator, encode_record
from repro.operators import AdaptiveLoadShedder
from repro.query import ast as q
from repro.server import DSMSServer, StreamCatalog

DAY_T0 = 72_000.0


def make_imager(n_frames: int = 3) -> GOESImager:
    crs = goes_geostationary(-135.0)
    return GOESImager(
        scene=SyntheticEarth(seed=5),
        sector_lattice=western_us_sector(crs, width=16, height=8),
        n_frames=n_frames,
        t0=DAY_T0,
    )


def make_catalog(n_frames: int = 3) -> StreamCatalog:
    catalog = StreamCatalog()
    catalog.register_imager(make_imager(n_frames))
    return catalog


def chunk_keys(chunks):
    """Order-sensitive bit-level identity of a chunk sequence."""
    return [(c.t, c.row0, c.band, c.values.tobytes()) for c in chunks]


class TestFaultSpec:
    def test_parse_fields_and_seed(self):
        spec = FaultSpec.parse("drop=0.05,dup=0.02,seed=42")
        assert spec.drop == 0.05 and spec.dup == 0.02 and spec.seed == 42
        assert spec.reorder == 0.0

    def test_parse_stall_and_disconnect_forms(self):
        spec = FaultSpec.parse("stall=0.1:30,disconnect=2@20")
        assert spec.stall == 0.1 and spec.stall_seconds == 30.0
        assert spec.disconnect == 2 and spec.disconnect_after == 20
        bare = FaultSpec.parse("stall=0.2,disconnect=1")
        assert bare.stall_seconds == 30.0  # default duration
        assert bare.disconnect_after == 20  # default position

    def test_parse_default_none_and_overrides(self):
        assert FaultSpec.parse("none") == FaultSpec()
        assert FaultSpec.parse("") == FaultSpec()
        assert FaultSpec.parse("default") == FaultSpec.default()
        tuned = FaultSpec.parse("seed=9,default,drop=0.5")
        assert tuned.seed == 9 and tuned.drop == 0.5
        assert tuned.dup == FaultSpec.default().dup

    @pytest.mark.parametrize(
        "bad",
        [
            "drop=2.0",          # probability outside [0, 1]
            "drop=high",         # not a number
            "frobnicate=0.1",    # unknown key
            "drop",              # missing value
            "seed=x",            # non-integer seed
            "stall=0.1:soon",    # bad stall duration
            "disconnect=1@soon", # bad disconnect position
        ],
    )
    def test_parse_rejects_bad_specs(self, bad):
        from repro.errors import FaultError

        with pytest.raises(FaultError):
            FaultSpec.parse(bad)

    def test_constructor_validation(self):
        from repro.errors import FaultError

        with pytest.raises(FaultError):
            FaultSpec(drop=1.5)
        with pytest.raises(FaultError):
            FaultSpec(stall_seconds=-1.0)
        with pytest.raises(FaultError):
            FaultSpec(disconnect=-1)
        with pytest.raises(FaultError):
            FaultSpec(disconnect_after=0)

    def test_to_string_round_trips(self):
        for spec in (
            FaultSpec.default(seed=3),
            FaultSpec(seed=1, drop=0.25, stall=0.5, stall_seconds=12.0),
            FaultSpec(seed=2, disconnect=3, disconnect_after=7),
            FaultSpec(),
        ):
            assert FaultSpec.parse(spec.to_string()) == spec
            assert str(spec) == spec.to_string()

    def test_single_and_active_kinds(self):
        from repro.errors import FaultError
        from repro.faults import FAULT_KINDS

        for kind in FAULT_KINDS:
            spec = FaultSpec.single(kind, seed=5)
            assert spec.active_kinds == (kind,)
        assert FaultSpec.default().active_kinds == FAULT_KINDS
        assert FaultSpec().active_kinds == ()
        with pytest.raises(FaultError):
            FaultSpec.single("gremlins")


class TestBackoffPolicy:
    def test_schedule_is_deterministic(self):
        policy = BackoffPolicy(seed=7)
        assert policy.schedule() == policy.schedule()
        assert BackoffPolicy(seed=7).schedule() == policy.schedule()
        assert BackoffPolicy(seed=8).schedule() != policy.schedule()

    def test_schedule_is_exponential_within_jitter(self):
        policy = BackoffPolicy(
            base=0.5, factor=2.0, max_delay=60.0, jitter=0.25, max_retries=10, seed=3
        )
        for i, delay in enumerate(policy.schedule()):
            lo = min(0.5 * 2.0**i, 60.0)
            assert lo <= delay <= lo * 1.25

    def test_zero_jitter_is_pure_exponential(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, max_delay=8.0, jitter=0.0, max_retries=6)
        assert policy.schedule() == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]


class TestResilientStream:
    def test_reconnect_delivers_no_duplicates_no_gaps(self):
        imager = make_imager()
        baseline = list(imager.stream("vis").chunks())
        spec = FaultSpec(seed=11, disconnect=3, disconnect_after=5)
        faulty = FaultInjector(spec).wrap_stream(imager.stream("vis"))
        ctx = RecoveryContext()
        recovered = list(resilient_stream(faulty, context=ctx).chunks())
        assert chunk_keys(recovered) == chunk_keys(baseline)
        assert ctx.retries == 3

    def test_backoff_sleeps_follow_the_schedule(self):
        imager = make_imager()
        spec = FaultSpec(seed=11, disconnect=2, disconnect_after=5)
        faulty = FaultInjector(spec).wrap_stream(imager.stream("vis"))
        clock = SimClock()
        policy = BackoffPolicy(seed=9)
        list(resilient_stream(faulty, policy=policy, clock=clock).chunks())
        assert clock.sleeps == policy.schedule()[:2]

    def test_dead_source_exhausts_retries(self):
        imager = make_imager()
        meta = imager.stream("vis").metadata

        def dead_source():
            raise SourceDisconnected("link never comes back")
            yield  # pragma: no cover

        dead = GeoStream(meta, dead_source)
        ctx = RecoveryContext(backoff=BackoffPolicy(max_retries=3, seed=1))
        with pytest.raises(RecoveryExhausted, match="3 reconnect attempts"):
            list(resilient_stream(dead, context=ctx).chunks())
        assert ctx.retries == 3
        assert ctx.sources_lost == 1

    def test_deadline_exhausts_before_max_retries(self):
        imager = make_imager()
        meta = imager.stream("vis").metadata

        def dead_source():
            raise SourceDisconnected("down")
            yield  # pragma: no cover

        dead = GeoStream(meta, dead_source)
        # Delays 1, 2, 4, ... against a 5-second deadline: the third retry
        # (cumulative 7s) would overshoot, so recovery stops after two.
        policy = BackoffPolicy(base=1.0, jitter=0.0, max_retries=10, deadline=5.0)
        ctx = RecoveryContext(backoff=policy)
        with pytest.raises(RecoveryExhausted, match="deadline"):
            list(resilient_stream(dead, context=ctx).chunks())
        assert ctx.retries == 2


class TestCheckpointRestore:
    def test_resume_delivers_each_frame_exactly_once(self):
        query = "reflectance(goes.vis)"
        baseline_server = DSMSServer(make_catalog())
        baseline = baseline_server.register(query, encode_png=False)
        baseline_server.run()
        assert len(baseline.frames) == 3

        # First connection dies mid-scan.
        server = DSMSServer(make_catalog())
        first = server.register(query, encode_png=False)
        server.run(max_chunks=12, close=False)
        checkpoint = first.checkpoint()
        assert 0 < checkpoint.frames_delivered < 3
        assert checkpoint.query_text == query

        # The client reconnects to a fresh server; the deterministic scan
        # replays but the resumed session discards the delivered prefix.
        server2 = DSMSServer(make_catalog())
        resumed = server2.restore_session(checkpoint)
        server2.run()
        assert resumed.resumed_skips > 0

        combined = [f.image for f in first.frames] + [f.image for f in resumed.frames]
        times = [img.t for img in combined]
        assert len(times) == len(set(times)) == 3, "duplicate or missing frames"
        by_t = {f.image.t: f.image for f in baseline.frames}
        for img in combined:
            assert np.array_equal(img.values, by_t[img.t].values)

    def test_empty_checkpoint_resumes_from_the_start(self):
        server = DSMSServer(make_catalog())
        session = server.register("reflectance(goes.vis)", encode_png=False)
        checkpoint = session.checkpoint()
        assert checkpoint.frames_delivered == 0
        server2 = DSMSServer(make_catalog())
        resumed = server2.restore_session(checkpoint)
        server2.run()
        assert len(resumed.frames) == 3
        assert resumed.resumed_skips == 0


class TestDeadLetter:
    def test_receives_exactly_the_quarantined_chunks(self):
        imager = make_imager(n_frames=1)
        chunks = list(imager.stream("vis").chunks())
        # Poison one mid-frame row with out-of-range counts.
        poison = dataclasses.replace(chunks[3], values=np.full_like(chunks[3].values, 65535))
        corrupted = chunks[:3] + [poison] + chunks[4:]
        stream = GeoStream.from_chunks(imager.stream("vis").metadata, corrupted)
        ctx = RecoveryContext()
        survived = list(stream.pipe(FrameGuard(value_set=GRAY10, context=ctx)).chunks())

        # The poison row was quarantined, which makes its frame incomplete:
        # the guard quarantines the frame's other rows too at flush.
        assert survived == []
        reasons = ctx.dead_letter.by_reason
        assert reasons == {"invalid-values": 1, "incomplete-frame": len(chunks) - 1}
        invalid = [e for e in ctx.dead_letter.entries if e.reason == "invalid-values"]
        assert len(invalid) == 1 and invalid[0].item is poison
        held_rows = {
            e.item.row0 for e in ctx.dead_letter.entries if e.reason == "incomplete-frame"
        }
        assert held_rows == {c.row0 for c in chunks if c.row0 != poison.row0}

    def test_duplicate_chunk_goes_to_dead_letter_not_downstream(self):
        imager = make_imager(n_frames=1)
        chunks = list(imager.stream("vis").chunks())
        duplicated = chunks[:4] + [chunks[2]] + chunks[4:]
        stream = GeoStream.from_chunks(imager.stream("vis").metadata, duplicated)
        ctx = RecoveryContext()
        survived = list(stream.pipe(FrameGuard(context=ctx)).chunks())
        assert chunk_keys(survived) == chunk_keys(chunks)
        assert ctx.dead_letter.by_reason == {"duplicate-chunk": 1}
        assert ctx.dead_letter.entries[0].item is chunks[2]

    def test_capacity_evicts_oldest_but_keeps_counting(self):
        from repro.faults import DeadLetterSink

        sink = DeadLetterSink(capacity=2)
        for i in range(5):
            sink.add(i, reason="r")
        assert sink.total == 5
        assert sink.dropped == 3
        assert [e.item for e in sink.entries] == [3, 4]


class BrokenIndex(NaiveRegionIndex):
    """A router whose overlap queries fail — forces the naive fallback."""

    def overlapping(self, box):
        raise StreamError("cascade tree corrupted")


class TestRouterFallback:
    def _spatial_query(self, catalog):
        box = catalog.extent("goes.vis")
        inner = type(box)(
            box.xmin + box.width * 0.1,
            box.ymin + box.height * 0.1,
            box.xmin + box.width * 0.8,
            box.ymin + box.height * 0.8,
            box.crs,
        )
        return q.SpatialRestrict(q.StreamRef("goes.vis"), inner)

    def test_broken_router_falls_back_to_naive_index(self):
        catalog = make_catalog()
        tree = self._spatial_query(catalog)
        good = DSMSServer(make_catalog())
        good_session = good.register(tree, encode_png=False)
        good.run()

        ctx = RecoveryContext()
        server = DSMSServer(make_catalog(), index_factory=BrokenIndex, recovery=ctx)
        session = server.register(tree, encode_png=False)
        stats = server.run()

        assert stats.fallbacks >= 1
        assert len(session.frames) == len(good_session.frames) > 0
        for mine, theirs in zip(session.frames, good_session.frames):
            assert np.array_equal(mine.image.values, theirs.image.values)

    def test_broken_router_raises_without_recovery(self):
        catalog = make_catalog()
        tree = self._spatial_query(catalog)
        server = DSMSServer(make_catalog(), index_factory=BrokenIndex)
        server.register(tree, encode_png=False)
        with pytest.raises(StreamError, match="cascade tree corrupted"):
            server.run()


class TestShedEscalation:
    def test_sustained_stall_escalates_then_relax_restores(self):
        shedder = AdaptiveLoadShedder(points_per_frame_budget=1000.0)
        assert shedder.pressure == 1.0
        shedder.escalate()
        shedder.escalate()
        assert shedder.pressure == 4.0
        for _ in range(10):
            shedder.escalate()
        assert shedder.pressure == 64.0  # bounded so it can recover
        assert shedder.escalations == 12
        shedder.relax()
        assert shedder.pressure == 1.0

    def test_stalled_source_drives_escalation_in_the_server(self):
        spec = FaultSpec(seed=202, stall=0.5, stall_seconds=30.0)
        ctx = RecoveryContext(stall_threshold_s=10.0)
        hardened, injector, ctx = harden_catalog(make_catalog(), spec, context=ctx)
        frame_points = 16 * 8
        shedder = AdaptiveLoadShedder(points_per_frame_budget=frame_points * 2.0)
        server = DSMSServer(hardened, ingest_shedder=shedder, recovery=ctx)
        server.register("reflectance(goes.vis)", encode_png=False)
        with recovering(ctx):
            server.run()
        assert injector.counts["stall"] > 0
        assert ctx.stalls_observed > 0
        assert shedder.escalations > 0
        assert ctx.clock.total_slept == injector.counts["stall"] * 30.0


class TestGeneratorPoisonRecords:
    def _records(self):
        lattice = GridLattice(LATLON, x0=-124.0, y0=42.0, dx=0.1, dy=-0.1, width=8, height=4)
        records = [
            encode_record(
                sector=7,
                frame=1,
                band="vis",
                row=row,
                t=DAY_T0 + row,
                last=row == 3,
                counts=np.arange(8, dtype=np.uint16) + row,
            )
            for row in range(4)
        ]
        return lattice, records

    def test_crc_poison_raises_without_recovery(self):
        lattice, records = self._records()
        records[1] = records[1][:20] + bytes([records[1][20] ^ 0x80]) + records[1][21:]
        gen = StreamGenerator({7: lattice})
        with pytest.raises(StreamError, match="CRC"):
            list(gen.decode_stream(records))

    def test_crc_poison_is_quarantined_under_recovery(self):
        lattice, records = self._records()
        bad = records[1][:20] + bytes([records[1][20] ^ 0x80]) + records[1][21:]
        records[1] = bad
        gen = StreamGenerator({7: lattice})
        with recovering() as ctx:
            chunks = list(gen.decode_stream(records))
        assert [c.row0 for c in chunks] == [0, 2, 3]
        assert ctx.dead_letter.by_reason == {"bad-record": 1}
        assert ctx.dead_letter.entries[0].item == bad
        assert "CRC" in ctx.dead_letter.entries[0].error

    def test_wire_level_injection_feeds_the_same_path(self):
        lattice, records = self._records()
        gen = StreamGenerator({7: lattice})
        injector = FaultInjector(FaultSpec(seed=3, bitflip=0.6))
        with recovering() as ctx:
            chunks = list(gen.decode_stream(injector.records(records)))
        assert injector.counts["bitflip"] > 0
        assert ctx.dead_letter.by_reason.get("bad-record") == injector.counts["bitflip"]
        assert len(chunks) == 4 - injector.counts["bitflip"]

    def test_eof_mid_frame_quarantined_under_recovery(self):
        lattice, records = self._records()
        gen = StreamGenerator({7: lattice}, organization=Organization.IMAGE_BY_IMAGE)
        with recovering() as ctx:
            chunks = list(gen.decode_stream(records[:-1]))
        assert chunks == []
        assert ctx.dead_letter.by_reason == {"partial-frame-eof": 1}
