"""Error hierarchy, stats formatting, archive-backed catalogs."""

import pytest

from repro import errors
from repro.errors import GeoStreamsError


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, GeoStreamsError), name

    def test_crs_mismatch_is_crs_error(self):
        assert issubclass(errors.CRSMismatchError, errors.CRSError)
        assert issubclass(errors.ProjectionDomainError, errors.ProjectionError)
        assert issubclass(errors.ProjectionError, errors.CRSError)

    def test_blocking_hazard_is_operator_error(self):
        assert issubclass(errors.BlockingHazardError, errors.OperatorError)
        assert issubclass(errors.CompositionError, errors.OperatorError)

    def test_query_errors(self):
        assert issubclass(errors.QuerySyntaxError, errors.QueryError)
        assert issubclass(errors.PlanError, errors.QueryError)

    def test_one_catch_all(self):
        with pytest.raises(GeoStreamsError):
            raise errors.CodecError("x")


class TestStatsWaitReporting:
    def test_report_carries_wait_time(self, scene, geos_crs):
        from repro.engine import compose_streams, format_report, pipeline_report
        from repro.ingest import GOESImager, western_us_sector
        from repro.operators import StreamComposition

        sector = western_us_sector(geos_crs, width=32, height=16)
        imager = GOESImager(
            scene=scene, sector_lattice=sector, n_frames=1,
            band_interleave="band", t0=72_000.0,
        )
        op = StreamComposition("-")
        out = compose_streams(imager.stream("nir"), imager.stream("vis"), op)
        out.count_points()
        report = [r for r in pipeline_report(out) if r.name == "composition"][0]
        assert report.mean_wait_time > 0
        assert report.max_wait_time >= report.mean_wait_time
        text = format_report(pipeline_report(out))
        assert "wait_s" in text

    def test_nonwaiting_operator_shows_dash(self, small_imager):
        from repro.engine import format_report, pipeline_report
        from repro.operators import Rescale

        out = small_imager.stream("vis").pipe(Rescale(1.0))
        out.count_points()
        text = format_report(pipeline_report(out))
        assert text.rstrip().endswith("-")


class TestArchiveCatalog:
    def test_register_archive_and_query(self, small_imager, tmp_path):
        from repro.io import write_archive
        from repro.server import DSMSServer, StreamCatalog

        path = tmp_path / "vis.gsar"
        write_archive(small_imager.stream("vis"), path)
        path_n = tmp_path / "nir.gsar"
        write_archive(small_imager.stream("nir"), path_n)

        catalog = StreamCatalog()
        catalog.register_archive(path)
        catalog.register_archive(path_n)
        assert catalog.ids() == ["goes.nir", "goes.vis"]
        assert catalog.extent("goes.vis") == small_imager.sector_lattice.bbox

        server = DSMSServer(catalog)
        session = server.register("ndvi(reflectance(goes.nir), reflectance(goes.vis))")
        server.run()
        assert len(session.frames) == 2

    def test_empty_archive_rejected(self, tmp_path, small_imager):
        from repro.core import GeoStream
        from repro.errors import ServerError
        from repro.io import write_archive
        from repro.server import StreamCatalog

        empty = GeoStream(small_imager.stream("vis").metadata, lambda: iter(()))
        path = tmp_path / "empty.gsar"
        write_archive(empty, path)
        with pytest.raises(ServerError):
            StreamCatalog().register_archive(path)
