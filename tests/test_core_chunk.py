"""Chunks: the stream transport units and their invariants."""

import numpy as np
import pytest

from repro.core import FrameInfo, GridChunk, GridLattice, PointChunk
from repro.errors import StreamError
from repro.geo import LATLON


@pytest.fixture()
def lattice():
    return GridLattice(LATLON, x0=0.0, y0=10.0, dx=1.0, dy=-1.0, width=8, height=4)


def make_chunk(lattice, **kw):
    defaults = dict(
        values=np.arange(32, dtype=np.float32).reshape(4, 8),
        lattice=lattice,
        band="vis",
        t=100.0,
    )
    defaults.update(kw)
    return GridChunk(**defaults)


class TestGridChunk:
    def test_shape_must_match_lattice(self, lattice):
        with pytest.raises(StreamError):
            make_chunk(lattice, values=np.zeros((3, 8)))

    def test_vector_values_allowed(self, lattice):
        chunk = make_chunk(lattice, values=np.zeros((4, 8, 3), dtype=np.uint8))
        assert chunk.channels == 3
        assert chunk.n_points == 32

    def test_one_d_rejected(self, lattice):
        with pytest.raises(StreamError):
            make_chunk(lattice, values=np.zeros(32))

    def test_coords(self, lattice):
        chunk = make_chunk(lattice)
        x, y = chunk.coords()
        assert x.shape == (4, 8)
        assert float(x[0, 0]) == 0.0 and float(y[0, 0]) == 10.0
        fx, fy = chunk.flat_coords()
        assert fx.shape == (32,)

    def test_timestamp_key_policies(self, lattice):
        chunk = make_chunk(lattice, sector=7)
        assert chunk.timestamp_key("measured") == 100.0
        assert chunk.timestamp_key("sector") == 7.0

    def test_sector_policy_falls_back_to_time(self, lattice):
        chunk = make_chunk(lattice, sector=None)
        assert chunk.timestamp_key("sector") == 100.0

    def test_unknown_policy_rejected(self, lattice):
        with pytest.raises(StreamError):
            make_chunk(lattice).timestamp_key("bogus")

    def test_with_values(self, lattice):
        chunk = make_chunk(lattice)
        out = chunk.with_values(np.ones((4, 8)), band="ndvi")
        assert out.band == "ndvi"
        assert out.t == chunk.t
        assert float(out.values[0, 0]) == 1.0
        # Original untouched (immutability).
        assert float(chunk.values[0, 0]) == 0.0

    def test_with_values_shape_checked(self, lattice):
        with pytest.raises(StreamError):
            make_chunk(lattice).with_values(np.ones((2, 8)))

    def test_subwindow(self, lattice):
        chunk = make_chunk(lattice, row0=10, col0=20)
        sub = chunk.subwindow(1, 2, 2, 3)
        assert sub.lattice.shape == (2, 3)
        assert float(sub.values[0, 0]) == float(chunk.values[1, 2])
        assert sub.row0 == 11 and sub.col0 == 22
        # Georeferencing follows the window.
        assert float(sub.lattice.x_of_col(0)) == float(lattice.x_of_col(2))

    def test_subwindow_bounds_checked(self, lattice):
        with pytest.raises(StreamError):
            make_chunk(lattice).subwindow(0, 0, 5, 8)
        with pytest.raises(StreamError):
            make_chunk(lattice).subwindow(0, 0, 0, 1)

    def test_nbytes(self, lattice):
        assert make_chunk(lattice).nbytes == 32 * 4


class TestPointChunk:
    def make(self, n=5, **kw):
        defaults = dict(
            x=np.linspace(0, 1, n),
            y=np.linspace(10, 11, n),
            values=np.arange(n, dtype=np.float32),
            band="elev",
            t=np.linspace(0, 1, n),
            crs=LATLON,
        )
        defaults.update(kw)
        return PointChunk(**defaults)

    def test_length_consistency_enforced(self):
        with pytest.raises(StreamError):
            self.make(values=np.arange(3, dtype=np.float32))

    def test_non_1d_rejected(self):
        with pytest.raises(StreamError):
            self.make(x=np.zeros((5, 1)))

    def test_select(self):
        chunk = self.make()
        out = chunk.select(chunk.values >= 2)
        assert out.n_points == 3
        np.testing.assert_array_equal(out.values, [2, 3, 4])
        # Coordinates and times follow the selection.
        assert float(out.x[0]) == float(chunk.x[2])
        assert float(out.t[0]) == float(chunk.t[2])

    def test_select_shape_checked(self):
        with pytest.raises(StreamError):
            self.make().select(np.ones(3, dtype=bool))

    def test_with_values(self):
        chunk = self.make()
        out = chunk.with_values(chunk.values * 2, band="x2")
        assert out.band == "x2"
        np.testing.assert_array_equal(out.values, chunk.values * 2)

    def test_with_values_length_checked(self):
        with pytest.raises(StreamError):
            self.make().with_values(np.zeros(2))

    def test_channels(self):
        chunk = self.make(values=np.zeros((5, 3), dtype=np.float32))
        assert chunk.channels == 3


class TestFrameInfo:
    def test_dimensions(self):
        lat = GridLattice(LATLON, 0.0, 0.0, 1.0, -1.0, 16, 9)
        info = FrameInfo(3, lat)
        assert info.n_rows == 9
        assert info.n_cols == 16
        assert info.frame_id == 3
