"""Projection correctness: round-trips, known values, domain handling."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProjectionDomainError, ProjectionError
from repro.geo import (
    GRS80,
    SPHERE,
    WGS84,
    Geostationary,
    LambertConformalConic,
    Mercator,
    PlateCarree,
    Sinusoidal,
    TransverseMercator,
    utm_projection,
)

lon_strategy = st.floats(-179.9, 179.9)
lat_strategy = st.floats(-84.0, 84.0)


def roundtrip_error(proj, lon, lat):
    x, y = proj.forward(np.asarray([lon]), np.asarray([lat]))
    lon2, lat2 = proj.inverse(x, y)
    dlon = (lon2.item() - lon + 180.0) % 360.0 - 180.0
    return abs(dlon), abs(lat2.item() - lat)


class TestPlateCarree:
    def test_equator_scaling(self):
        p = PlateCarree()
        x, y = p.forward(1.0, 0.0)
        assert float(x) == pytest.approx(math.radians(1.0) * WGS84.a)
        assert float(y) == pytest.approx(0.0)

    def test_central_meridian_shift(self):
        p = PlateCarree(lon_0=-120.0)
        x, _ = p.forward(-120.0, 45.0)
        assert float(x) == pytest.approx(0.0, abs=1e-6)

    @given(lon=lon_strategy, lat=st.floats(-89.9, 89.9))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, lon, lat):
        dlon, dlat = roundtrip_error(PlateCarree(), lon, lat)
        assert dlon < 1e-9 and dlat < 1e-9

    def test_out_of_domain_latitude_is_nan(self):
        p = PlateCarree()
        lon, lat = p.inverse(0.0, WGS84.a * math.pi)  # |phi| > pi/2
        assert np.isnan(float(lat))


class TestMercator:
    def test_equator(self):
        m = Mercator()
        x, y = m.forward(10.0, 0.0)
        assert float(y) == pytest.approx(0.0, abs=1e-6)
        assert float(x) == pytest.approx(math.radians(10.0) * WGS84.a)

    def test_known_value_ellipsoidal(self):
        # At 45N the ellipsoidal Mercator northing is ~5591295.9 m
        # (differs from spherical ~5621521 m).
        m = Mercator()
        _, y = m.forward(0.0, 45.0)
        assert float(y) == pytest.approx(5_591_295.9, abs=200.0)

    def test_spherical_formula(self):
        m = Mercator(ellipsoid=SPHERE)
        _, y = m.forward(0.0, 45.0)
        expected = SPHERE.a * math.log(math.tan(math.pi / 4 + math.radians(45.0) / 2))
        assert float(y) == pytest.approx(expected, rel=1e-12)

    @given(lon=lon_strategy, lat=st.floats(-85.0, 85.0))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, lon, lat):
        dlon, dlat = roundtrip_error(Mercator(), lon, lat)
        assert dlon < 1e-9 and dlat < 1e-8

    def test_poleward_clipped_to_nan(self):
        m = Mercator()
        x, y = m.forward(0.0, 89.9)
        assert np.isnan(float(x)) and np.isnan(float(y))


class TestTransverseMercatorUTM:
    def test_utm_zone10_known_point(self):
        # UC Davis is roughly (-121.74, 38.54): UTM 10N ~ (609600 E, 4266700 N).
        utm10 = utm_projection(10)
        x, y = utm10.forward(-121.74, 38.54)
        assert float(x) == pytest.approx(609_600, abs=300)
        assert float(y) == pytest.approx(4_266_700, abs=300)

    def test_central_meridian_false_easting(self):
        utm10 = utm_projection(10)  # lon_0 = -123
        x, _ = utm10.forward(-123.0, 40.0)
        assert float(x) == pytest.approx(500_000.0, abs=1e-3)

    def test_scale_factor_on_meridian(self):
        utm10 = utm_projection(10)
        _, y1 = utm10.forward(-123.0, 40.0)
        _, y2 = utm10.forward(-123.0, 40.001)
        # dy/dphi = k0 * M'(phi) ~ k0 * 111132 m/deg at 40N.
        assert float(y2 - y1) == pytest.approx(0.9996 * 111.04, rel=1e-2)

    def test_southern_hemisphere_false_northing(self):
        utm33s = utm_projection(33, north=False)
        _, y = utm33s.forward(15.0, -30.0)
        assert 6_000_000 < float(y) < 7_000_000

    def test_invalid_zone_rejected(self):
        with pytest.raises(ProjectionError):
            utm_projection(0)
        with pytest.raises(ProjectionError):
            utm_projection(61)

    @given(
        zone=st.integers(1, 60),
        dlon=st.floats(-2.9, 2.9),
        lat=st.floats(-80.0, 84.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_within_zone(self, zone, dlon, lat):
        proj = utm_projection(zone, north=lat >= 0)
        lon_0 = -183.0 + 6.0 * zone
        lon = lon_0 + dlon
        dlon_err, dlat_err = roundtrip_error(proj, lon, lat)
        assert dlon_err < 1e-8 and dlat_err < 1e-8

    def test_far_from_meridian_is_nan(self):
        utm10 = utm_projection(10)
        x, _ = utm10.forward(60.0, 0.0)  # ~177 degrees away
        assert np.isnan(float(x))


class TestLambertConformalConic:
    def test_origin_maps_near_zero(self):
        lcc = LambertConformalConic()
        x, y = lcc.forward(-96.0, 39.0)
        assert float(x) == pytest.approx(0.0, abs=1e-6)
        assert float(y) == pytest.approx(0.0, abs=1e-6)

    def test_standard_parallel_scale(self):
        # Along a standard parallel the scale is true: one degree of
        # longitude at 33N spans a*cos(phi)/sqrt(1-e^2 sin^2 phi) per radian.
        lcc = LambertConformalConic()
        x1, y1 = lcc.forward(-96.0, 33.0)
        x2, y2 = lcc.forward(-95.0, 33.0)
        d = math.hypot(float(x2 - x1), float(y2 - y1))
        phi = math.radians(33.0)
        true = (
            math.radians(1.0)
            * WGS84.a
            * math.cos(phi)
            / math.sqrt(1.0 - WGS84.e2 * math.sin(phi) ** 2)
        )
        assert d == pytest.approx(true, rel=2e-4)

    @given(lon=st.floats(-130.0, -60.0), lat=st.floats(15.0, 65.0))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_conus(self, lon, lat):
        dlon, dlat = roundtrip_error(LambertConformalConic(), lon, lat)
        assert dlon < 1e-8 and dlat < 1e-8

    def test_single_parallel_variant(self):
        lcc = LambertConformalConic(lat_1=45.0, lat_2=45.0, lat_0=45.0, lon_0=0.0)
        dlon, dlat = roundtrip_error(lcc, 5.0, 47.0)
        assert dlon < 1e-8 and dlat < 1e-8


class TestSinusoidal:
    def test_equal_area_property(self):
        """Area of a small patch is preserved (equal-area projection)."""
        s = Sinusoidal()
        r = SPHERE.a
        for lat0 in (0.0, 30.0, 60.0):
            d = 0.01
            lons = np.array([0.0, d, d, 0.0])
            lats = np.array([lat0, lat0, lat0 + d, lat0 + d])
            x, y = s.forward(lons, lats)
            # Shoelace area of the projected quadrilateral.
            area = 0.5 * abs(
                np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))
            )
            # True spherical area of the patch.
            true = (
                r**2
                * math.radians(d)
                * (math.sin(math.radians(lat0 + d)) - math.sin(math.radians(lat0)))
            )
            assert area == pytest.approx(true, rel=1e-3)

    @given(lon=lon_strategy, lat=st.floats(-89.0, 89.0))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, lon, lat):
        dlon, dlat = roundtrip_error(Sinusoidal(), lon, lat)
        assert dlon < 1e-9 and dlat < 1e-9


class TestGeostationary:
    def test_subsatellite_point_is_origin(self):
        g = Geostationary(lon_0=-135.0)
        x, y = g.forward(-135.0, 0.0)
        assert float(x) == pytest.approx(0.0, abs=1e-6)
        assert float(y) == pytest.approx(0.0, abs=1e-6)

    def test_far_side_not_visible(self):
        g = Geostationary(lon_0=-135.0)
        x, y = g.forward(45.0, 0.0)  # antipodal side
        assert np.isnan(float(x)) and np.isnan(float(y))

    def test_limb_is_visible_but_edge(self):
        g = Geostationary(lon_0=0.0)
        # ~81 degrees of longitude away is just inside the visible disk.
        x, _ = g.forward(75.0, 0.0)
        assert np.isfinite(float(x))

    def test_off_disk_scan_angle_is_nan(self):
        g = Geostationary(lon_0=0.0)
        lon, lat = g.inverse(6_000_000.0, 0.0)  # far outside the disk
        assert np.isnan(float(lon)) and np.isnan(float(lat))

    def test_forward_strict_raises(self):
        g = Geostationary(lon_0=0.0)
        with pytest.raises(ProjectionDomainError):
            g.forward_strict(170.0, 0.0)

    def test_uses_grs80_by_default(self):
        assert Geostationary().ellipsoid == GRS80

    @given(dlon=st.floats(-55.0, 55.0), lat=st.floats(-55.0, 55.0))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_visible_disk(self, dlon, lat):
        g = Geostationary(lon_0=-135.0)
        lon = -135.0 + dlon
        dlon_err, dlat_err = roundtrip_error(g, lon, lat)
        assert dlon_err < 1e-9 and dlat_err < 1e-9

    def test_east_positive_x(self):
        g = Geostationary(lon_0=-135.0)
        x_east, _ = g.forward(-130.0, 0.0)
        x_west, _ = g.forward(-140.0, 0.0)
        assert float(x_east) > 0 > float(x_west)

    def test_north_positive_y(self):
        g = Geostationary(lon_0=-135.0)
        _, y_north = g.forward(-135.0, 10.0)
        _, y_south = g.forward(-135.0, -10.0)
        assert float(y_north) > 0 > float(y_south)


class TestProjectionIdentity:
    def test_equality_by_params(self):
        assert Mercator() == Mercator()
        assert Mercator(lon_0=10.0) != Mercator()
        assert Mercator() != PlateCarree()
        assert utm_projection(10) == utm_projection(10)
        assert utm_projection(10) != utm_projection(11)

    def test_hashable(self):
        assert len({Mercator(), Mercator(), PlateCarree()}) == 2

    def test_repr_mentions_params(self):
        assert "lon_0" in repr(Mercator(lon_0=7.0))
