"""CLI front-end tests (run in-process via repro.cli.main)."""


import pytest

from repro.cli import build_demo_catalog, main


SMALL = ["--sector", "48", "24", "--frames", "1"]


class TestBuildDemoCatalog:
    def test_builds_both_bands(self):
        imager, catalog = build_demo_catalog(width=32, height=16, n_frames=1)
        assert catalog.ids() == ["goes.nir", "goes.vis"]
        assert imager.sector_lattice.shape == (16, 32)

    def test_seed_changes_data(self):
        _, cat1 = build_demo_catalog(seed=1, width=32, height=16, n_frames=1)
        _, cat2 = build_demo_catalog(seed=2, width=32, height=16, n_frames=1)
        f1 = cat1.get("goes.vis").collect_frames()[0]
        f2 = cat2.get("goes.vis").collect_frames()[0]
        assert (f1.values != f2.values).any()


class TestCommands:
    def test_streams(self, capsys):
        assert main(["streams", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "goes.vis" in out and "goes.nir" in out
        assert "row-by-row" in out

    def test_explain(self, capsys):
        rc = main(
            [
                "explain",
                "within(reflectance(goes.vis), bbox(-124, 36, -120, 40, crs='latlon'))",
                *SMALL,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "parsed:" in out and "optimized" in out
        assert "push-spatial-valuemap" in out
        assert "estimated per-frame work" in out

    def test_query_writes_pngs(self, capsys, tmp_path):
        rc = main(
            [
                "query",
                "stretch(reflectance(goes.vis), 'linear')",
                "--out",
                str(tmp_path),
                *SMALL,
            ]
        )
        assert rc == 0
        pngs = sorted(tmp_path.glob("*.png"))
        assert len(pngs) == 1
        assert pngs[0].read_bytes().startswith(b"\x89PNG")
        out = capsys.readouterr().out
        assert "1 frames" in out

    def test_query_no_optimize(self, capsys):
        rc = main(
            [
                "query",
                "within(reflectance(goes.vis), bbox(-124, 36, -120, 40, crs='latlon'))",
                "--no-optimize",
                *SMALL,
            ]
        )
        assert rc == 0

    def test_query_syntax_error_returns_2(self, capsys):
        rc = main(["query", "frobnicate(goes.vis)", *SMALL])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_demo(self, capsys):
        rc = main(["serve-demo", "--clients", "2", *SMALL])
        assert rc == 0
        out = capsys.readouterr().out
        assert "session #1" in out
        assert "routing pruned" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])


class TestArchiveCommands:
    def test_archive_then_replay(self, capsys, tmp_path):
        rc = main(["archive", "--out", str(tmp_path), *SMALL])
        assert rc == 0
        archives = sorted(tmp_path.glob("*.gsar"))
        assert len(archives) == 2
        out_dir = tmp_path / "png"
        rc = main(
            [
                "replay",
                *[str(p) for p in archives],
                "ndvi(reflectance(goes.nir), reflectance(goes.vis))",
                "--out",
                str(out_dir),
            ]
        )
        assert rc == 0
        assert len(list(out_dir.glob("*.png"))) == 1
        out = capsys.readouterr().out
        assert "frames replayed" in out

    def test_replay_bad_archive_errors(self, capsys, tmp_path):
        bad = tmp_path / "junk.gsar"
        bad.write_bytes(b"nope")
        rc = main(["replay", str(bad), "goes.vis"])
        assert rc == 2
