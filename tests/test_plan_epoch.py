"""Versioned plan epochs: transactional DAG membership and hot swap.

Acceptance bar for adaptive re-optimization: a running query's plan can
be replaced mid-scan through an :class:`~repro.plan.epoch.EpochTransition`
— unchanged shared stages grafted with their refcounts and operator
state intact, orphans retired — and the server's cutover protocol drains
the old subplan to a frame boundary and seeds the new epoch from a
:class:`~repro.server.session.SessionCheckpoint`, so the delivered frame
sequence is bit-identical to never having swapped: no frame dropped, no
frame duplicated, every frame produced wholly within one epoch.

The swap is requested from *inside* the scan (a hook stream fires
``request_replan`` mid-frame, the way the adaptive policy would), so the
cutover exercises the live drain-to-boundary path of ``DSMSServer.run``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.errors import PlanError, ServerError
from repro.geo import goes_geostationary
from repro.ingest import GOESImager, SyntheticEarth, western_us_sector
from repro.obs.stats import lineage
from repro.query.adaptive import AdaptiveDecision, AdaptivePolicy
from repro.query.calibration import CalibrationProfile, CalibrationSample
from repro.server import DSMSServer, StreamCatalog

from tests.conftest import DAY_T0, hook_stream, sector_subbox

N_FRAMES = 6


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable_stats()
    obs.disable_frame_tracing()
    obs.get_registry().reset()
    yield
    obs.disable_stats()
    obs.disable_frame_tracing()
    obs.get_registry().reset()


@pytest.fixture()
def epoch_imager():
    scene = SyntheticEarth(seed=7)
    crs = goes_geostationary(-135.0)
    sector = western_us_sector(crs, width=96, height=48)
    return GOESImager(
        scene=scene,
        lon_0=-135.0,
        sector_lattice=sector,
        n_frames=N_FRAMES,
        bands=("vis",),
        t0=DAY_T0,
    )


@pytest.fixture()
def epoch_catalog(epoch_imager):
    cat = StreamCatalog()
    cat.register_imager(epoch_imager)
    return cat


def bbox_text(box):
    return (
        f"bbox({box.xmin!r}, {box.ymin!r}, {box.xmax!r}, {box.ymax!r}, "
        "crs='geos:-135')"
    )


def swap_query(imager):
    """Restriction-on-top: the exact spatial-pushdown rule reorders it.

    Registered with optimization off, a re-plan pushes the restriction
    below the value map — different stage fingerprints, identical output
    (the rule is exact), which is what makes bit-identity across the
    swap a meaningful assertion.
    """
    return f"within(reflectance(goes.vis), {bbox_text(sector_subbox(imager, 0.2, 0.2, 0.8, 0.8))})"


def chunks_per_frame(imager):
    stream = imager.streams()["vis"]  # keyed by band; stream_id is goes.vis
    return sum(1 for _ in stream.chunks()) // N_FRAMES


def hooked_catalog(imager, after_chunks, fire):
    cat = StreamCatalog()
    bbox = imager.sector_lattice.bbox
    for stream in imager.streams().values():
        cat.register(hook_stream(stream, after_chunks, fire), bbox)
    return cat


def run_with_swap(
    imager,
    query=None,
    *,
    swap_after_frames=2,
    columnar=None,
    reason="test-replan",
    **replan_kw,
):
    """One scan; a replan fires mid-frame ``swap_after_frames`` and commits
    at that frame's boundary — the old epoch ships exactly that many frames."""
    query = query or swap_query(imager)
    per_frame = chunks_per_frame(imager)
    box = {}

    def fire():
        box["queued"] = box["server"].request_replan(
            box["session"], reason=reason, **replan_kw
        )

    after = per_frame * (swap_after_frames - 1) + 2  # safely mid-frame
    catalog = hooked_catalog(imager, after, fire)
    server = DSMSServer(catalog, optimize_queries=False, columnar=columnar)
    session = server.register(query, encode_png=False)
    box["server"], box["session"] = server, session
    server.run()
    assert box.get("queued") is True, "the mid-run replan must have queued"
    return server, session


class TestEpochBookkeeping:
    def test_register_starts_epoch_one(self, epoch_catalog, epoch_imager):
        server = DSMSServer(epoch_catalog)
        session = server.register(swap_query(epoch_imager), encode_png=False)
        rid = server._session_to_reg[session.session_id]
        assert server.plan_dag.current_epoch(rid) == 1
        assert session.current_epoch == 1
        assert server.epoch_of(session) == 1
        for stage in server.plan_dag.order:
            assert stage.epochs == {rid: 1}
        assert len(server.plan_dag.epoch_history[rid]) == 1
        assert server.plan_dag.epoch_history[rid][0].reason == "register"

    def test_swap_identical_plan_grafts_everything(self, epoch_catalog, epoch_imager):
        server = DSMSServer(epoch_catalog)
        session = server.register(swap_query(epoch_imager), encode_png=False)
        rid = server._session_to_reg[session.session_id]
        reg = server._registrations[rid]
        before = server.plan_dag.stage_fingerprints(rid)
        result = server.plan_dag.swap_plan(
            rid, reg.plan, reg.fanout, reg.stages, reason="shed-rate"
        )
        assert result.old_epoch == 1 and result.new_epoch == 2
        assert result.grafted == frozenset(before)
        assert result.added == result.retired == frozenset()
        assert server.plan_dag.stage_fingerprints(rid) == before
        for stage in server.plan_dag.order:
            assert stage.epochs == {rid: 2}
            assert stage.subscribers == {rid}

    def test_historical_fingerprints_by_epoch(self, epoch_imager):
        server, session = run_with_swap(epoch_imager)
        rid = server._session_to_reg[session.session_id]
        e1 = server.plan_dag.stage_fingerprints(rid, epoch=1)
        e2 = server.plan_dag.stage_fingerprints(rid, epoch=2)
        assert e1 != e2  # the re-plan reordered the operators
        assert server.plan_dag.stage_fingerprints(rid) == e2  # live == current
        with pytest.raises(PlanError):
            server.plan_dag.stage_fingerprints(rid, epoch=3)
        with pytest.raises(PlanError):
            server.plan_dag.stage_fingerprints(999, epoch=1)
        with pytest.raises(PlanError):
            server.plan_dag.stage_fingerprints(epoch=1)  # needs a root

    def test_transition_is_single_use(self, epoch_catalog, epoch_imager):
        from repro.plan import EpochTransition

        server = DSMSServer(epoch_catalog)
        session = server.register(swap_query(epoch_imager), encode_png=False)
        rid = server._session_to_reg[session.session_id]
        reg = server._registrations[rid]
        transition = EpochTransition(server.plan_dag, rid, reason="again")
        transition.swap(reg.plan, reg.fanout, reg.stages)
        transition.commit()
        with pytest.raises(PlanError, match="already committed"):
            transition.swap(reg.plan, reg.fanout, reg.stages)
        with pytest.raises(PlanError, match="already committed"):
            transition.commit()

    def test_deregister_clears_epoch_state(self, epoch_catalog, epoch_imager):
        server = DSMSServer(epoch_catalog)
        session = server.register(swap_query(epoch_imager), encode_png=False)
        rid = server._session_to_reg[session.session_id]
        server.deregister(session.session_id)
        assert rid not in server.plan_dag.epoch_of
        assert server.plan_dag.order == []
        assert server.epoch_of(rid) == 0

    def test_render_shows_epoch_identity(self, epoch_imager):
        server, session = run_with_swap(epoch_imager)
        rid = server._session_to_reg[session.session_id]
        rendered = server.explain_dag()
        assert f"q{rid}@e2" in rendered
        assert f"subscribers=[{rid}@e2]" in rendered


class TestHotSwapCutover:
    @pytest.mark.parametrize("columnar", [False, True])
    def test_no_dropped_or_duplicated_frames(
        self, epoch_catalog, epoch_imager, columnar
    ):
        query = swap_query(epoch_imager)
        reference = DSMSServer(
            epoch_catalog, optimize_queries=False, columnar=columnar
        )
        ref_session = reference.register(query, encode_png=False)
        reference.run()
        assert len(ref_session.frames) == N_FRAMES

        server, session = run_with_swap(epoch_imager, query, columnar=columnar)
        frames = session.frames
        assert len(frames) == N_FRAMES
        # DeliveredFrame sequence numbers: contiguous across the swap —
        # nothing dropped, nothing delivered twice.
        assert [f.seq for f in frames] == list(range(N_FRAMES))
        for got, want in zip(frames, ref_session.frames):
            assert got.image.t == want.image.t
            assert np.array_equal(
                got.image.values, want.image.values, equal_nan=True
            )

    def test_cutover_lands_on_a_frame_boundary(self, epoch_imager):
        server, session = run_with_swap(epoch_imager, swap_after_frames=2)
        assert len(server.swap_log) == 1
        record = server.swap_log[0]
        assert record.reason == "test-replan"
        assert record.result.old_epoch == 1 and record.result.new_epoch == 2
        # Requested mid-frame 2, committed only once the scan reached the
        # frame boundary: the old epoch drained whole frames.
        per_frame = chunks_per_frame(epoch_imager)
        assert record.at_chunk == per_frame * 2
        # The cutover was seeded from per-session checkpoints taken at
        # the drained boundary: exactly the frames the old epoch shipped.
        (checkpoint,) = record.checkpoints
        assert checkpoint.frames_delivered == 2
        # Epoch stamps partition the delivery sequence: old epoch's
        # frames first, then the new epoch's — never interleaved.
        epochs = [f.epoch for f in session.frames]
        assert epochs == sorted(epochs)
        assert epochs == [1, 1, 2, 2, 2, 2]

    def test_provenance_traverses_exactly_one_epochs_stages(self, epoch_imager):
        with obs.observe(stats=True):
            server, session = run_with_swap(epoch_imager)
        rid = server._session_to_reg[session.session_id]
        assert {f.epoch for f in session.frames} == {1, 2}
        for frame in session.frames:
            prov = lineage(frame)
            assert prov is not None
            expected = server.plan_dag.stage_fingerprints(rid, epoch=frame.epoch)
            assert set(prov.stages) == expected, (
                f"frame #{frame.seq} (epoch {frame.epoch}) crossed epochs"
            )

    def test_shared_prefix_survives_another_querys_swap(self, epoch_imager):
        # Two queries sharing the reflectance prefix; swapping one must
        # graft the shared stage (operator state + both refcounts intact)
        # and leave the other query's epoch — and frames — untouched.
        box = {}

        def fire():
            box["queued"] = box["server"].request_replan(box["s1"], force=True)

        per_frame = chunks_per_frame(epoch_imager)
        catalog = hooked_catalog(epoch_imager, per_frame + 2, fire)
        server = DSMSServer(catalog)
        s1 = server.register("vrange(reflectance(goes.vis), 0.0, 0.6)", encode_png=False)
        s2 = server.register("vrange(reflectance(goes.vis), 0.2, 0.9)", encode_png=False)
        box["server"], box["s1"] = server, s1
        r1 = server._session_to_reg[s1.session_id]
        r2 = server._session_to_reg[s2.session_id]
        shared = [s for s in server.plan_dag.order if len(s.subscribers) > 1]
        assert shared, "expected a shared reflectance prefix"
        shared_ops = {id(s.op) for s in shared}

        server.run()
        assert box.get("queued") is True

        assert server.epoch_of(s1) == 2
        assert server.epoch_of(s2) == 1
        still_shared = [s for s in server.plan_dag.order if len(s.subscribers) > 1]
        assert {id(s.op) for s in still_shared} == shared_ops, (
            "shared stages must be grafted, not rebuilt"
        )
        for stage in still_shared:
            assert stage.subscribers == {r1, r2}
            assert stage.epochs == {r1: 2, r2: 1}
        assert len(s1.frames) == len(s2.frames) == N_FRAMES
        assert [f.seq for f in s1.frames] == list(range(N_FRAMES))
        assert [f.seq for f in s2.frames] == list(range(N_FRAMES))
        assert [f.epoch for f in s2.frames] == [1] * N_FRAMES

    def test_request_replan_without_change_is_a_noop(
        self, epoch_catalog, epoch_imager
    ):
        server = DSMSServer(epoch_catalog)  # optimization on: already optimal
        session = server.register(swap_query(epoch_imager), encode_png=False)
        assert server.request_replan(session) is False
        assert server._pending_swaps == {}
        assert server.epoch_of(session) == 1

    def test_request_replan_unknown_session_raises(self, epoch_catalog):
        server = DSMSServer(epoch_catalog)
        with pytest.raises(ServerError, match="unknown query"):
            server.request_replan(12345)

    def test_selfcheck_clean_after_swap(self, epoch_imager):
        server, _ = run_with_swap(epoch_imager)
        report = server.selfcheck()
        assert report.ok, report.render()

    def test_corrupted_epoch_stamp_is_detected(self, epoch_imager):
        server, session = run_with_swap(epoch_imager)
        rid = server._session_to_reg[session.session_id]
        server.plan_dag.order[0].epochs[rid] = 1  # stale stamp
        codes = {d.code for d in server.selfcheck().diagnostics}
        assert "GS-DAG005" in codes

    def test_epoch_swap_metric_published(self, epoch_imager):
        with obs.observe():
            server, _ = run_with_swap(epoch_imager)
            swaps = obs.get_registry().counter("repro_plan_epoch_swaps_total").value
        assert swaps == 1


class TestShedRateEpoch:
    def test_swap_pins_the_managed_shed_rate(self, epoch_imager):
        from repro.operators import AdaptiveLoadShedder

        box = {}

        def fire():
            box["queued"] = box["server"].request_replan(
                box["session"], reason="slo-breach", shed_pressure=1.0
            )

        per_frame = chunks_per_frame(epoch_imager)
        catalog = hooked_catalog(epoch_imager, per_frame + 2, fire)
        shedder = AdaptiveLoadShedder(points_per_frame_budget=1e9)
        server = DSMSServer(
            catalog, optimize_queries=False, ingest_shedder=shedder
        )
        session = server.register(swap_query(epoch_imager), encode_png=False)
        box["server"], box["session"] = server, session
        shedder.escalate()  # reflexive panic: pressure 2
        assert shedder.pressure == 2.0
        server.run()
        assert box.get("queued") is True
        assert server.epoch_of(session) == 2
        assert shedder.managed
        assert shedder.pressure == 1.0
        shedder.escalate()  # superseded: the re-planner owns the rate now
        assert shedder.pressure == 1.0


class TestAdaptivePolicyUnit:
    def test_breach_streak_hysteresis(self):
        policy = AdaptivePolicy(breach_chunks=3)
        assert policy.observe(1, breached=True) is None
        assert policy.observe(1, breached=True) is None
        decision = policy.observe(1, breached=True)
        assert isinstance(decision, AdaptiveDecision)
        assert decision.reason == "slo-breach"
        assert decision.shed_pressure == 1.0  # manage_shedding default

    def test_single_late_frame_never_triggers(self):
        policy = AdaptivePolicy(breach_chunks=3)
        for _ in range(50):  # breaches never consecutive enough
            assert policy.observe(1, breached=True) is None
            assert policy.observe(1, breached=True) is None
            assert policy.observe(1, breached=False) is None
        assert policy.replans_fired(1) == 0

    def test_cooldown_refractory_period(self):
        policy = AdaptivePolicy(breach_chunks=2, cooldown_chunks=10, max_replans=5)
        assert policy.observe(1, breached=True) is None
        assert policy.observe(1, breached=True) is not None
        # Still breached: no second decision until the cooldown expires
        # (the observation that drains the cooldown to zero re-arms it).
        fired = [policy.observe(1, breached=True) for _ in range(9)]
        assert fired == [None] * 9
        assert policy.observe(1, breached=True) is not None
        assert policy.replans_fired(1) == 2

    def test_max_replans_bounds_the_lifetime(self):
        policy = AdaptivePolicy(breach_chunks=1, cooldown_chunks=0, max_replans=2)
        decisions = [policy.observe(1, breached=True) for _ in range(20)]
        assert sum(d is not None for d in decisions) == 2
        assert policy.replans_fired(1) == 2

    def test_queries_tracked_independently(self):
        policy = AdaptivePolicy(breach_chunks=2)
        assert policy.observe(1, breached=True) is None
        assert policy.observe(2, breached=False) is None
        assert policy.observe(1, breached=True) is not None
        assert policy.replans_fired(2) == 0

    def test_cost_divergence_trigger(self):
        calibration = CalibrationProfile(
            coefficients={"ValueMap": 1e-6}, n_samples=1, kinds=("ValueMap",)
        )
        policy = AdaptivePolicy(divergence_ratio=4.0, calibration=calibration)
        ok = CalibrationSample("ValueMap", 1000.0, 3.9e-3)  # 3.9x: under
        assert policy.observe_costs(1, [ok]) is None
        diverged = CalibrationSample("ValueMap", 1000.0, 4.1e-3)  # 4.1x
        decision = policy.observe_costs(1, [diverged])
        assert decision is not None and decision.reason == "cost-divergence"

    def test_cost_divergence_ignores_noise_and_needs_calibration(self):
        tiny = CalibrationSample("ValueMap", 10.0, 5e-5)  # below min_wall_s
        policy = AdaptivePolicy(
            calibration=CalibrationProfile(
                coefficients={"ValueMap": 1e-9}, n_samples=1, kinds=("ValueMap",)
            )
        )
        assert policy.observe_costs(1, [tiny]) is None
        uncalibrated = AdaptivePolicy()  # no profile: trigger disabled
        huge = CalibrationSample("ValueMap", 1000.0, 10.0)
        assert uncalibrated.observe_costs(1, [huge]) is None


class TestTraceEpochIdentity:
    def test_swap_window_pins_both_sides(self, epoch_imager):
        # Sample rate 0: only the swap window can force traces in.
        ftracer = obs.enable_frame_tracing(sample_rate=0.0)
        try:
            server, session = run_with_swap(epoch_imager)
        finally:
            obs.disable_frame_tracing()
        pinned = ftracer.recorder.pinned
        assert pinned, "epoch swap must auto-pin the transition window"
        swap_marked = [
            t
            for t in pinned
            if (t.pin_reason or "").startswith("epoch-swap:e1->e2")
            or any(n.startswith("epoch-swap:e1->e2") for n in t.annotations)
        ]
        assert swap_marked, "pinned traces must name the epoch transition"
        assert ftracer.chunks_traced > 0  # the window forced sampling on

    def test_post_swap_frames_annotated_with_epoch(self, epoch_imager):
        obs.enable_frame_tracing(sample_rate=1.0)
        try:
            server, session = run_with_swap(epoch_imager)
        finally:
            obs.disable_frame_tracing()
        by_epoch = {1: [], 2: []}
        for frame in session.frames:
            assert frame.trace is not None
            by_epoch[frame.epoch].append(frame.trace)
        assert by_epoch[1] and by_epoch[2]
        for trace in by_epoch[2]:
            assert any(n == "epoch=2" for n in trace.annotations), (
                "new-epoch frames must carry their epoch in the trace"
            )
