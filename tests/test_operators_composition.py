"""Stream composition (Def. 10): matching, timestamping, buffering."""

import numpy as np
import pytest

from repro.core import Organization
from repro.engine import compose_streams
from repro.errors import CompositionError
from repro.ingest import GOESImager, LidarScanner, western_us_sector
from repro.operators import StreamComposition, normalized_difference

DAY_T0 = 72_000.0


def make_imager(scene, geos_crs, organization=Organization.ROW_BY_ROW, interleave="row", shape=(16, 32)):
    sector = western_us_sector(geos_crs, width=shape[1], height=shape[0])
    return GOESImager(
        scene=scene,
        sector_lattice=sector,
        n_frames=2,
        organization=organization,
        band_interleave=interleave,
        t0=DAY_T0,
    )


class TestSemantics:
    def test_pointwise_gamma(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs)
        vis, nir = imager.stream("vis"), imager.stream("nir")
        out = compose_streams(nir, vis, StreamComposition("-")).collect_frames()
        v = vis.collect_frames()
        n = nir.collect_frames()
        assert len(out) == 2
        np.testing.assert_allclose(
            out[0].values, n[0].values.astype(float) - v[0].values.astype(float)
        )

    @pytest.mark.parametrize("gamma,fn", [
        ("+", np.add), ("*", np.multiply), ("sup", np.maximum), ("inf", np.minimum),
    ])
    def test_all_gammas(self, scene, geos_crs, gamma, fn):
        imager = make_imager(scene, geos_crs, shape=(8, 16))
        vis, nir = imager.stream("vis"), imager.stream("nir")
        out = compose_streams(nir, vis, StreamComposition(gamma)).collect_frames()[0]
        v = vis.collect_frames()[0].values.astype(float)
        n = nir.collect_frames()[0].values.astype(float)
        np.testing.assert_allclose(out.values, fn(n, v))

    def test_division_by_zero_is_nan(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, shape=(8, 16))
        vis = imager.stream("vis")
        zero = vis.pipe(__import__("repro.operators", fromlist=["Rescale"]).Rescale(0.0))
        out = compose_streams(vis, zero, StreamComposition("/")).collect_frames()[0]
        assert np.isnan(out.values).all()

    def test_custom_kernel_ndvi(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, shape=(8, 16))
        vis, nir = imager.stream("vis"), imager.stream("nir")
        op = StreamComposition(normalized_difference, band="ndvi")
        out = compose_streams(nir, vis, op).collect_frames()[0]
        assert out.band == "ndvi"
        finite = out.values[np.isfinite(out.values)]
        assert finite.min() >= -1.0 and finite.max() <= 1.0

    def test_band_naming(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, shape=(8, 16))
        vis, nir = imager.stream("vis"), imager.stream("nir")
        out = compose_streams(nir, vis, StreamComposition("-"))
        assert out.metadata.band == "(nir-vis)"

    def test_unknown_gamma_rejected(self):
        with pytest.raises(CompositionError):
            StreamComposition("%")

    def test_point_streams_rejected(self, scene):
        lidar = LidarScanner(scene=scene, n_points=100, points_per_chunk=100)
        op = StreamComposition("+")
        with pytest.raises(CompositionError):
            compose_streams(lidar.stream(), lidar.stream(), op).collect_chunks()

    def test_output_timestamp_is_latest(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, shape=(8, 16))
        vis, nir = imager.stream("vis"), imager.stream("nir")
        out_chunks = compose_streams(nir, vis, StreamComposition("-")).collect_chunks()
        vis_chunks = vis.collect_chunks()
        nir_chunks = nir.collect_chunks()
        assert out_chunks[0].t == max(vis_chunks[0].t, nir_chunks[0].t)


class TestTimestamping:
    """Section 3.3's central observation (experiment E6)."""

    def test_measured_policy_never_matches(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, interleave="band")
        vis, nir = imager.stream("vis"), imager.stream("nir")
        op = StreamComposition("-", timestamp_policy="measured")
        out = compose_streams(nir, vis, op).collect_chunks()
        assert out == []  # "would never produce new image data"

    def test_sector_policy_matches_fully(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, interleave="band")
        vis, nir = imager.stream("vis"), imager.stream("nir")
        op = StreamComposition("-", timestamp_policy="sector")
        out = compose_streams(nir, vis, op)
        assert out.count_points() == vis.count_points()

    def test_measured_policy_with_tolerance_recovers(self, scene, geos_crs):
        """A tolerance of the detector offset lets measured stamps match."""
        imager = make_imager(scene, geos_crs, interleave="row")
        vis, nir = imager.stream("vis"), imager.stream("nir")
        op = StreamComposition(
            "-", timestamp_policy="measured", time_tolerance=imager.row_time
        )
        out = compose_streams(nir, vis, op)
        assert out.count_points() > 0


class TestBuffering:
    """Section 3.3: buffering follows the point organization (experiment E5)."""

    def test_row_by_row_buffers_one_row(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, Organization.ROW_BY_ROW, "row")
        op = StreamComposition("-")
        compose_streams(imager.stream("nir"), imager.stream("vis"), op).count_points()
        row_points = imager.sector_lattice.width
        assert op.stats.max_buffered_points == row_points

    def test_image_by_image_buffers_whole_image(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, Organization.IMAGE_BY_IMAGE, "row")
        op = StreamComposition("-")
        compose_streams(imager.stream("nir"), imager.stream("vis"), op).count_points()
        frame_points = imager.sector_lattice.n_points
        assert op.stats.max_buffered_points == frame_points

    def test_sequential_band_scan_buffers_whole_frame_even_rowwise(self, scene, geos_crs):
        """Ablation: with 'band' interleaving, one band's whole frame
        arrives before the other band starts, so even row-by-row streams
        force frame-sized composition buffers."""
        imager = make_imager(scene, geos_crs, Organization.ROW_BY_ROW, "band")
        op = StreamComposition("-")
        compose_streams(imager.stream("nir"), imager.stream("vis"), op).count_points()
        frame_points = imager.sector_lattice.n_points
        assert op.stats.max_buffered_points == frame_points

    def test_buffer_drains_on_flush(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs)
        op = StreamComposition("-")
        compose_streams(imager.stream("nir"), imager.stream("vis"), op).count_points()
        assert op.stats.buffered_points == 0

    def test_unmatched_chunks_produce_no_output(self, scene, geos_crs):
        """Disjoint regions: 'no single point that occurs in both streams'."""
        im_a = make_imager(scene, geos_crs, shape=(8, 16))
        im_b = make_imager(scene, geos_crs, shape=(8, 20))  # different lattice
        op = StreamComposition("-")
        out = compose_streams(im_a.stream("nir"), im_b.stream("vis"), op).collect_chunks()
        assert out == []


class TestMetadata:
    def test_crs_mismatch_rejected_at_metadata(self, scene, geos_crs):
        from repro.ingest import AirborneCamera

        imager = make_imager(scene, geos_crs, shape=(8, 16))
        cam = AirborneCamera(scene=scene, n_frames=1)
        with pytest.raises(CompositionError):
            compose_streams(imager.stream("vis"), cam.stream(), StreamComposition("+"))

    def test_value_set_promotion(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, shape=(8, 16))
        out = compose_streams(
            imager.stream("nir"), imager.stream("vis"), StreamComposition("-")
        )
        assert not out.metadata.value_set.is_integer


class TestNestedComposition:
    """Closure under composition: composed streams compose again."""

    def test_three_band_expression(self, scene, geos_crs):
        """sup(nir - vis, vis - nir) == |nir - vis| pointwise."""
        imager = make_imager(scene, geos_crs, shape=(8, 16))
        vis, nir = imager.stream("vis"), imager.stream("nir")
        diff_a = compose_streams(nir, vis, StreamComposition("-"))
        diff_b = compose_streams(vis, nir, StreamComposition("-"))
        outer = compose_streams(diff_a, diff_b, StreamComposition("sup"))
        frames = outer.collect_frames()
        assert len(frames) == 2
        n = nir.collect_frames()[0].values.astype(float)
        v = vis.collect_frames()[0].values.astype(float)
        np.testing.assert_allclose(frames[0].values, np.abs(n - v))

    def test_nested_composition_reopenable(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, shape=(8, 16))
        vis, nir = imager.stream("vis"), imager.stream("nir")
        inner = compose_streams(nir, vis, StreamComposition("-"))
        outer = compose_streams(inner, vis, StreamComposition("+"))
        a = outer.count_points()
        b = outer.count_points()
        assert a == b > 0

    def test_nested_metadata_propagates(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, shape=(8, 16))
        vis, nir = imager.stream("vis"), imager.stream("nir")
        inner = compose_streams(nir, vis, StreamComposition("-"))
        outer = compose_streams(inner, vis, StreamComposition("+"))
        assert outer.metadata.band == "((nir-vis)+vis)"
        assert outer.crs == vis.crs
