"""Differential harness: columnar kernels against the per-point oracle.

The columnar execution mode is *defined* by equivalence: for every
pipeline the whole-chunk kernels must deliver bit-identical results to
the per-point implementations they replace. Four layers of evidence:

* every documented/example query, registered on a DSMS in both modes —
  delivered frames, aggregate records, chunk provenance, and per-stage
  :class:`~repro.obs.stats.StageStats` counts all match exactly;
* each operator kernel on the pull path, fed the shared demo streams —
  output chunks and the operators' own :class:`OperatorStats` match;
* oracle equivalence as a *property* — hypothesis-generated query trees
  and hypothesis-generated frames (arbitrary lattices and value domains
  from :mod:`tests.strategies`) agree in both modes;
* the chaos matrix — every fault kind, injected identically in both
  modes, yields identical deliveries, injector counts, and dead letters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import obs
from repro.cli import build_demo_catalog
from repro.core import GeoStream, GridChunk, Organization, StreamMetadata, TimeInterval
from repro.engine.pipeline import compose_streams
from repro.faults import FAULT_KINDS, FaultSpec, harden_catalog, recovering
from repro.geo import BoundingBox, PolygonRegion, utm
from repro.operators import (
    Coarsen,
    FrameStretch,
    Magnify,
    Reproject,
    Rescale,
    Rotate,
    SpatialRestriction,
    StreamComposition,
    TemporalRestriction,
    ValueRestriction,
)
from repro.query import plan_query
from repro.server import DSMSServer

from tests.strategies import (
    BOX,
    SOURCES,
    frame_chunks_strategy,
    tree_strategy,
)
from tests.test_analysis_docs import (
    _doc_queries,
    _example_constant_queries,
    _example_runtime_queries,
)
from tests.test_faults_chaos import make_catalog as make_chaos_catalog

VIS = SOURCES["goes.vis"]
NIR = SOURCES["goes.nir"]


def chunk_key(chunk):
    """Everything that defines a delivered chunk, bit-exact."""
    assert isinstance(chunk, GridChunk), f"unexpected chunk type {type(chunk)}"
    return (
        chunk.values.tobytes(),
        str(chunk.values.dtype),
        chunk.values.shape,
        chunk.lattice,
        chunk.band,
        chunk.t,
        chunk.sector,
        chunk.row0,
        chunk.col0,
        chunk.last_in_frame,
        chunk.frame,
    )


def _sub_box(frac_lo: float = 0.2, frac_hi: float = 0.8) -> BoundingBox:
    return BoundingBox(
        BOX.xmin + BOX.width * frac_lo,
        BOX.ymin + BOX.height * frac_lo,
        BOX.xmin + BOX.width * frac_hi,
        BOX.ymin + BOX.height * frac_hi,
        BOX.crs,
    )


def _triangle() -> PolygonRegion:
    """A non-box region, exercising the mask kernel."""
    return PolygonRegion(
        [
            (BOX.xmin + 0.1 * BOX.width, BOX.ymin + 0.1 * BOX.height),
            (BOX.xmax - 0.1 * BOX.width, BOX.ymin + 0.2 * BOX.height),
            (BOX.xmin + 0.5 * BOX.width, BOX.ymax - 0.1 * BOX.height),
        ],
        crs=BOX.crs,
    )


# -- per-kernel pull-path differential --------------------------------------------

_KERNELS = {
    "rescale": lambda: [Rescale(0.5, offset=2.0)],
    "stretch-linear": lambda: [FrameStretch("linear")],
    "stretch-equalize": lambda: [FrameStretch("equalize")],
    "stretch-gaussian": lambda: [FrameStretch("gaussian")],
    "restrict-box": lambda: [SpatialRestriction(_sub_box())],
    "restrict-polygon": lambda: [SpatialRestriction(_triangle())],
    "restrict-value": lambda: [ValueRestriction(200.0, 900.0)],
    "restrict-time": lambda: [TemporalRestriction(TimeInterval(72_000.0, 72_030.0))],
    "magnify": lambda: [Magnify(2)],
    "coarsen": lambda: [Coarsen(3)],
    "rotate": lambda: [Rotate(30.0)],
    "reproject": lambda: [Reproject(utm(10))],
    "chain": lambda: [
        Rescale(2.0, offset=-1.0),
        FrameStretch("linear"),
        Coarsen(2),
        SpatialRestriction(_sub_box(0.0, 0.9)),
    ],
}


class TestKernelDifferential:
    @pytest.mark.parametrize("name", sorted(_KERNELS))
    def test_kernel_bit_identical(self, name):
        oracle_ops = _KERNELS[name]()
        columnar_ops = _KERNELS[name]()
        oracle = VIS.pipe(*oracle_ops, columnar=False).collect_chunks()
        columnar = VIS.pipe(*columnar_ops, columnar=True).collect_chunks()
        assert [chunk_key(c) for c in oracle] == [chunk_key(c) for c in columnar]
        # Satellite fix under test: rows/bytes accounting must be identical
        # in both execution modes, not just the delivered values.
        assert [op.stats for op in oracle_ops] == [op.stats for op in columnar_ops]

    @pytest.mark.parametrize("gamma", ["+", "-", "*", "sup", "inf"])
    def test_compose_bit_identical(self, gamma):
        def run(columnar):
            op = StreamComposition(gamma, timestamp_policy="sector")
            out = compose_streams(VIS, NIR, op, columnar=columnar).collect_chunks()
            return [chunk_key(c) for c in out], op.stats

        assert run(False) == run(True)

    def test_kernels_produce_output(self):
        """The differential above is not vacuous: kernels do emit chunks."""
        for name, make in _KERNELS.items():
            assert VIS.pipe(*make(), columnar=True).collect_chunks(), name


# -- every documented/example query through the DSMS ------------------------------


@pytest.fixture(scope="module")
def demo():
    return build_demo_catalog(seed=7, n_frames=2, width=48, height=24)


def _documented_queries(imager):
    seen = []
    for _, text in (
        *_doc_queries(),
        *_example_constant_queries(),
        *_example_runtime_queries(imager),
    ):
        if text not in seen:
            seen.append(text)
    return seen


def _run_all_queries(catalog, queries, columnar):
    """One server, every query registered, full scan under stage stats."""
    server = DSMSServer(catalog, columnar=columnar)
    sessions = [server.register(text, encode_png=False) for text in queries]
    with obs.observe(stats=True) as ob:
        server.run()
    frames = {
        text: [
            (f.image.t, f.image.band, str(f.image.values.dtype),
             f.image.lattice, f.image.values.tobytes(), f.provenance)
            for f in session.frames
        ]
        for text, session in zip(queries, sessions)
    }
    records = {text: session.records for text, session in zip(queries, sessions)}
    stage_counts = {
        fp: (s.calls, s.chunks_in, s.chunks_out, s.points_in, s.points_out,
             s.bytes_in, s.bytes_out)
        for fp, s in ob.stats.stages.items()
    }
    return frames, records, stage_counts, dict(ob.stats.scans)


class TestDocumentedQueries:
    def test_documented_queries_bit_identical(self, demo):
        imager, catalog = demo
        queries = _documented_queries(imager)
        assert len(queries) >= 8
        oracle = _run_all_queries(catalog, queries, columnar=False)
        columnar = _run_all_queries(catalog, queries, columnar=True)

        o_frames, o_records, o_stages, o_scans = oracle
        c_frames, c_records, c_stages, c_scans = columnar
        for text in queries:
            assert o_frames[text] == c_frames[text], text
            assert o_records[text] == c_records[text], text
        # Provenance-bearing frames were actually delivered (non-vacuous).
        delivered = [f for frames in o_frames.values() for f in frames]
        assert delivered
        assert all(f[-1] is not None and f[-1].stages for f in delivered)
        # Per-stage accounting matches exactly, stage for stage.
        assert o_stages == c_stages
        assert o_scans == c_scans


# -- oracle equivalence as a property ---------------------------------------------


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tree=tree_strategy())
def test_random_trees_oracle_equivalence(tree):
    oracle = plan_query(tree, SOURCES, columnar=False).collect_chunks()
    columnar = plan_query(tree, SOURCES, columnar=True).collect_chunks()
    assert [chunk_key(c) for c in oracle] == [chunk_key(c) for c in columnar]


def _ops_for(kind, lattice, value_set):
    lo, hi = value_set.bounds
    lo = float(max(lo, -1.0e4))
    hi = float(min(hi, 1.0e4))
    box = lattice.bbox
    sub = BoundingBox(
        box.xmin + 0.2 * box.width,
        box.ymin + 0.2 * box.height,
        box.xmax - 0.2 * box.width,
        box.ymax - 0.2 * box.height,
        box.crs,
    )
    return {
        "rescale": lambda: [Rescale(1.5, offset=-3.0)],
        "stretch": lambda: [FrameStretch("linear")],
        "coarsen": lambda: [Coarsen(2)],
        "magnify": lambda: [Magnify(2)],
        "restrict-value": lambda: [ValueRestriction(lo + 0.25 * (hi - lo), lo + 0.75 * (hi - lo))],
        "restrict-box": lambda: [SpatialRestriction(sub)],
    }[kind]


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    fc=frame_chunks_strategy(),
    kind=st.sampled_from(
        ["rescale", "stretch", "coarsen", "magnify", "restrict-value", "restrict-box"]
    ),
)
def test_generated_frames_oracle_equivalence(fc, kind):
    """Arbitrary lattices/value domains agree in both modes, stats included."""
    chunks, value_set = fc
    lattice = chunks[0].frame.lattice
    metadata = StreamMetadata(
        stream_id="hyp.src",
        band=chunks[0].band,
        crs=lattice.crs,
        organization=Organization.ROW_BY_ROW,
        value_set=value_set,
    )
    stream = GeoStream.from_chunks(metadata, chunks)
    make = _ops_for(kind, lattice, value_set)
    oracle_ops, columnar_ops = make(), make()
    oracle = stream.pipe(*oracle_ops, columnar=False).collect_chunks()
    columnar = stream.pipe(*columnar_ops, columnar=True).collect_chunks()
    assert [chunk_key(c) for c in oracle] == [chunk_key(c) for c in columnar]
    assert [op.stats for op in oracle_ops] == [op.stats for op in columnar_ops]


# -- chaos matrix: every fault kind x columnar mode -------------------------------


class TestChaosColumnar:
    def test_fault_kind_registry_is_complete(self):
        assert len(FAULT_KINDS) == 8

    @pytest.mark.parametrize("seed", (101, 404))
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_chaos_bit_identical_across_modes(self, kind, seed):
        """Same seeded faults, same deliveries, whichever kernels run."""

        def run(columnar):
            spec = FaultSpec.single(kind, seed=seed)
            hardened, injector, ctx = harden_catalog(make_chaos_catalog(), spec)
            server = DSMSServer(hardened, recovery=ctx, columnar=columnar)
            session = server.register("reflectance(goes.vis)", encode_png=False)
            with recovering(ctx):
                server.run()
            frames = [
                (f.image.t, f.image.values.tobytes()) for f in session.frames
            ]
            return frames, dict(injector.counts), dict(ctx.dead_letter.by_reason)

        oracle = run(False)
        columnar = run(True)
        assert oracle == columnar
        assert oracle[1][kind] > 0, f"{kind}@{seed} injected nothing"
