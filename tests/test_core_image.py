"""Images (Def. 4) and frame assembly from chunk sequences."""

import numpy as np
import pytest

from repro.core import FrameInfo, GridChunk, GridLattice, PointChunk, RasterImage, assemble_frames
from repro.errors import StreamError
from repro.geo import LATLON


@pytest.fixture()
def frame_lattice():
    return GridLattice(LATLON, x0=0.0, y0=10.0, dx=1.0, dy=-1.0, width=6, height=4)


def row_chunks(frame_lattice, frame_id=0, t0=0.0, band="vis"):
    """One frame as row-by-row chunks."""
    info = FrameInfo(frame_id, frame_lattice)
    chunks = []
    for row in range(frame_lattice.height):
        values = np.full((1, frame_lattice.width), row, dtype=np.float32)
        chunks.append(
            GridChunk(
                values=values,
                lattice=frame_lattice.row_lattice(row),
                band=band,
                t=t0 + row,
                sector=frame_id,
                frame=info,
                row0=row,
                last_in_frame=(row == frame_lattice.height - 1),
            )
        )
    return chunks


class TestRasterImage:
    def test_shape_checked(self, frame_lattice):
        with pytest.raises(StreamError):
            RasterImage(np.zeros((2, 2)), frame_lattice, "vis", 0.0)

    def test_value_at(self, frame_lattice):
        img = RasterImage(np.arange(24.0).reshape(4, 6), frame_lattice, "vis", 0.0)
        # Pixel (1, 2) has center (2.0, 9.0).
        assert float(img.value_at(2.0, 9.0)) == 8.0

    def test_value_at_outside_raises(self, frame_lattice):
        img = RasterImage(np.zeros((4, 6)), frame_lattice, "vis", 0.0)
        with pytest.raises(StreamError):
            img.value_at(100.0, 100.0)

    def test_to_chunk_roundtrip(self, frame_lattice):
        img = RasterImage(np.ones((4, 6)), frame_lattice, "vis", 5.0, sector=2)
        chunk = img.to_chunk()
        assert chunk.t == 5.0 and chunk.sector == 2
        assert chunk.lattice == frame_lattice

    def test_to_png_bytes(self, frame_lattice):
        img = RasterImage(
            np.random.default_rng(0).integers(0, 255, (4, 6), dtype=np.uint8).astype(np.uint8),
            frame_lattice,
            "vis",
            0.0,
        )
        assert img.to_png_bytes().startswith(b"\x89PNG")


class TestAssembleFrames:
    def test_rows_reassemble(self, frame_lattice):
        images = list(assemble_frames(row_chunks(frame_lattice)))
        assert len(images) == 1
        img = images[0]
        assert img.shape == (4, 6)
        np.testing.assert_array_equal(img.values[:, 0], [0, 1, 2, 3])
        assert img.lattice == frame_lattice

    def test_multiple_frames(self, frame_lattice):
        chunks = row_chunks(frame_lattice, 0) + row_chunks(frame_lattice, 1, t0=100.0)
        images = list(assemble_frames(chunks))
        assert len(images) == 2
        assert images[1].sector == 1

    def test_missing_last_flag_flushes_on_frame_change(self, frame_lattice):
        chunks = row_chunks(frame_lattice, 0)
        # Strip the last-in-frame flag.
        from dataclasses import replace

        chunks = [replace(c, last_in_frame=False) for c in chunks]
        chunks += row_chunks(frame_lattice, 1)
        images = list(assemble_frames(chunks))
        assert len(images) == 2

    def test_trailing_partial_frame_emitted_at_end(self, frame_lattice):
        from dataclasses import replace

        chunks = [replace(c, last_in_frame=False) for c in row_chunks(frame_lattice)[:2]]
        images = list(assemble_frames(chunks))
        assert len(images) == 1
        # Unfilled rows are NaN for float data.
        assert np.isnan(images[0].values[3]).all()

    def test_frameless_chunk_passes_through(self, frame_lattice):
        chunk = GridChunk(
            values=np.ones((4, 6)), lattice=frame_lattice, band="vis", t=0.0
        )
        images = list(assemble_frames([chunk]))
        assert len(images) == 1
        assert images[0].shape == (4, 6)

    def test_point_chunks_rejected(self):
        pc = PointChunk(
            x=np.zeros(2), y=np.zeros(2), values=np.zeros(2), band="p",
            t=np.zeros(2), crs=LATLON,
        )
        with pytest.raises(StreamError):
            list(assemble_frames([pc]))

    def test_out_of_extent_chunk_rejected(self, frame_lattice):
        info = FrameInfo(0, frame_lattice)
        bad = GridChunk(
            values=np.zeros((1, 6)),
            lattice=frame_lattice.row_lattice(0),
            band="vis",
            t=0.0,
            frame=info,
            row0=99,
            last_in_frame=True,
        )
        with pytest.raises(StreamError):
            list(assemble_frames([bad]))

    def test_integer_fill_is_zero(self, frame_lattice):
        from dataclasses import replace

        chunks = row_chunks(frame_lattice)[:2]
        chunks = [
            replace(c, values=c.values.astype(np.uint16), last_in_frame=False)
            for c in chunks
        ]
        images = list(assemble_frames(chunks))
        assert images[0].values.dtype == np.uint16
        assert (images[0].values[3] == 0).all()
