"""Raw record codec and the stream generator (Fig. 3 boundary)."""

import numpy as np
import pytest

from repro.core import GridLattice, Organization
from repro.errors import StreamError
from repro.geo import LATLON
from repro.ingest import StreamGenerator, decode_record, encode_record


@pytest.fixture()
def lattice():
    return GridLattice(LATLON, 0.0, 10.0, 0.5, -0.5, 8, 4)


def record_bytes(row=0, sector=0, frame=0, width=8, last=False, t=1.5, band="vis"):
    counts = (np.arange(width) + 10 * row).astype(np.uint16)
    return encode_record(sector, frame, band, row, t, last, counts)


class TestRecordCodec:
    def test_roundtrip(self):
        counts = np.array([1, 2, 65535], dtype=np.uint16)
        data = encode_record(3, 4, "nir", 7, 123.25, True, counts)
        rec = decode_record(data)
        assert (rec.sector, rec.frame, rec.band, rec.row) == (3, 4, "nir", 7)
        assert rec.t == 123.25 and rec.last is True
        np.testing.assert_array_equal(rec.counts, counts)

    def test_crc_detects_corruption(self):
        data = bytearray(record_bytes())
        data[20] ^= 0xFF
        with pytest.raises(StreamError, match="CRC"):
            decode_record(bytes(data))

    def test_truncation_detected(self):
        data = record_bytes()
        with pytest.raises(StreamError):
            decode_record(data[:10])

    def test_band_name_length_checked(self):
        with pytest.raises(StreamError):
            encode_record(0, 0, "waytoolongband", 0, 0.0, False, np.zeros(1, np.uint16))

    def test_dtype_checked(self):
        with pytest.raises(StreamError):
            encode_record(0, 0, "vis", 0, 0.0, False, np.zeros(4, np.uint8))

    def test_bad_magic(self):
        data = bytearray(record_bytes())
        data[0:4] = b"XXXX"
        with pytest.raises(StreamError):
            decode_record(bytes(data))


class TestStreamGenerator:
    def frame_records(self, lattice, frame=0):
        return [
            record_bytes(row=r, frame=frame, sector=frame, last=(r == lattice.height - 1))
            for r in range(lattice.height)
        ]

    def test_row_by_row_chunks(self, lattice):
        gen = StreamGenerator({0: lattice}, Organization.ROW_BY_ROW)
        chunks = list(gen.decode_stream(self.frame_records(lattice)))
        assert len(chunks) == 4
        assert all(c.lattice.shape == (1, 8) for c in chunks)
        assert chunks[-1].last_in_frame and not chunks[0].last_in_frame
        assert chunks[2].row0 == 2
        # Georeferencing: row 2's y matches the frame lattice.
        assert float(chunks[2].lattice.y_of_row(0)) == float(lattice.y_of_row(2))

    def test_image_by_image_coalesces(self, lattice):
        gen = StreamGenerator({0: lattice}, Organization.IMAGE_BY_IMAGE)
        chunks = list(gen.decode_stream(self.frame_records(lattice)))
        assert len(chunks) == 1
        chunk = chunks[0]
        assert chunk.lattice.shape == (4, 8)
        assert chunk.last_in_frame
        np.testing.assert_array_equal(chunk.values[3], np.arange(8) + 30)

    def test_point_organization_rejected(self, lattice):
        with pytest.raises(StreamError):
            StreamGenerator({0: lattice}, Organization.POINT_BY_POINT)

    def test_unknown_sector_rejected(self, lattice):
        gen = StreamGenerator({0: lattice})
        bad = record_bytes(sector=9, frame=9)
        with pytest.raises(StreamError, match="sector 9"):
            list(gen.decode_stream([bad]))

    def test_width_mismatch_rejected(self, lattice):
        gen = StreamGenerator({0: lattice})
        bad = record_bytes(width=5)
        with pytest.raises(StreamError, match="width"):
            list(gen.decode_stream([bad]))

    def test_row_out_of_range_rejected(self, lattice):
        gen = StreamGenerator({0: lattice})
        bad = record_bytes(row=10)
        with pytest.raises(StreamError, match="row"):
            list(gen.decode_stream([bad]))

    def test_midframe_end_detected_image_mode(self, lattice):
        gen = StreamGenerator({0: lattice}, Organization.IMAGE_BY_IMAGE)
        records = self.frame_records(lattice)[:-1]  # missing last row
        with pytest.raises(StreamError, match="mid-frame"):
            list(gen.decode_stream(records))

    def test_frame_metadata_attached(self, lattice):
        gen = StreamGenerator({0: lattice})
        chunks = list(gen.decode_stream(self.frame_records(lattice)))
        assert all(c.frame is not None for c in chunks)
        assert chunks[0].frame.lattice == lattice
        assert chunks[0].sector == 0
