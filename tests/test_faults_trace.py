"""Chaos runs with the flight recorder on: every fault leaves a trace.

For each fault kind and seed the hardened pipeline runs with frame
tracing enabled. The contract: every injected fault annotates the
affected chunk's frame trace with ``fault:<kind>`` and auto-pins it in
the flight recorder, so a chaotic run always ends with a pinned capture
of what went wrong — delivered or not (never-delivered frames surface as
*partial* traces at run close). Tracing must not perturb the injection
sequence: the faulted run stays bit-identical to its untraced twin.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import obs
from repro.faults import FAULT_KINDS, FaultSpec, harden_catalog, recovering
from repro.geo import goes_geostationary
from repro.ingest import GOESImager, SyntheticEarth, western_us_sector
from repro.server import DSMSServer, StreamCatalog

DAY_T0 = 72_000.0
QUERY = "reflectance(goes.vis)"

if "CHAOS_SEED" in os.environ:
    SEEDS = (int(os.environ["CHAOS_SEED"]),)
else:
    SEEDS = (101, 202, 303, 404, 505)


@pytest.fixture(autouse=True)
def _clean_trace_state():
    obs.disable_frame_tracing()
    yield
    obs.disable_frame_tracing()


def make_catalog() -> StreamCatalog:
    crs = goes_geostationary(-135.0)
    imager = GOESImager(
        scene=SyntheticEarth(seed=5),
        sector_lattice=western_us_sector(crs, width=16, height=8),
        n_frames=3,
        t0=DAY_T0,
    )
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    return catalog


def run_hardened(spec: FaultSpec, traced: bool):
    ftracer = obs.enable_frame_tracing() if traced else None
    hardened, injector, ctx = harden_catalog(make_catalog(), spec)
    server = DSMSServer(hardened, recovery=ctx)
    session = server.register(QUERY, encode_png=False)
    with recovering(ctx):
        server.run()
    return session, injector, ctx, ftracer


class TestChaosTraces:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_fault_is_annotated_and_pinned(self, kind, seed):
        spec = FaultSpec.single(kind, seed=seed)
        session, injector, ctx, ftracer = run_hardened(spec, traced=True)
        assert injector.counts[kind] > 0, "the drill must actually inject"
        note = f"fault:{kind}"
        pinned = ftracer.recorder.pinned
        assert pinned, f"{kind}: injected faults must pin flight-recorder traces"
        annotated = [t for t in pinned if note in t.annotations]
        assert annotated, f"{kind}: no pinned trace carries {note!r}"
        assert all(t.pin_reason is not None for t in pinned)
        assert ftracer.recorder.within_bounds()
        if kind == "disconnect":
            # The post-reconnect chunks carry the recovery note.
            recovery_notes = [
                n
                for t in pinned
                for n in t.annotations
                if n.startswith("recovery:reconnect:")
            ]
            assert recovery_notes, "reconnect must be annotated on resumed chunks"

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_tracing_does_not_perturb_injection_or_results(self, kind):
        """Traced and untraced chaos runs are bit-identical twins."""
        spec = FaultSpec.single(kind, seed=SEEDS[0])
        session_a, injector_a, _, _ = run_hardened(spec, traced=False)
        obs.disable_frame_tracing()
        session_b, injector_b, _, _ = run_hardened(spec, traced=True)
        assert injector_a.counts == injector_b.counts
        assert len(session_a.frames) == len(session_b.frames)
        for fa, fb in zip(session_a.frames, session_b.frames):
            assert fa.image.t == fb.image.t
            assert np.array_equal(fa.image.values, fb.image.values)
            assert fb.trace is not None, "traced twin must carry frame traces"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_mix_stays_bounded_and_annotated(self, seed):
        spec = FaultSpec.default(seed=seed)
        session, injector, ctx, ftracer = run_hardened(spec, traced=True)
        assert sum(injector.counts.values()) > 0
        assert ftracer.recorder.within_bounds()
        fault_notes = {
            n
            for t in ftracer.recorder.pinned
            for n in t.annotations
            if n.startswith("fault:")
        }
        injected = {f"fault:{k}" for k, v in injector.counts.items() if v}
        # Every annotation corresponds to a genuinely injected kind.
        assert fault_notes <= injected
        assert fault_notes, "a default-mix drill must pin annotated traces"
