"""Temporal restriction domains (Def. 7)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AllTime,
    RecurringInterval,
    TimeInstants,
    TimeIntersection,
    TimeInterval,
    TimeIntervalSet,
    TimeUnion,
    intersect_timesets,
)
from repro.errors import QueryError


class TestAllTime:
    def test_contains_everything(self):
        at = AllTime()
        assert at.contains_scalar(-1e18)
        assert at.contains_scalar(1e18)
        assert at.bounds() == (-math.inf, math.inf)


class TestInstants:
    def test_membership_with_tolerance(self):
        ts = TimeInstants((10.0, 20.0, 30.0), tolerance=0.5)
        assert ts.contains_scalar(10.4)
        assert ts.contains_scalar(19.6)
        assert not ts.contains_scalar(15.0)

    def test_vectorized(self):
        ts = TimeInstants((10.0, 20.0), tolerance=0.1)
        out = ts.contains(np.array([9.95, 10.2, 20.05, 0.0]))
        np.testing.assert_array_equal(out, [True, False, True, False])

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            TimeInstants(())

    def test_bounds(self):
        ts = TimeInstants((5.0, 1.0, 9.0), tolerance=0.5)
        lo, hi = ts.bounds()
        assert lo == pytest.approx(0.5) and hi == pytest.approx(9.5)


class TestInterval:
    def test_closed_endpoints(self):
        iv = TimeInterval(0.0, 10.0)
        assert iv.contains_scalar(0.0) and iv.contains_scalar(10.0)

    def test_open_endpoints(self):
        iv = TimeInterval(0.0, 10.0, closed_start=False, closed_end=False)
        assert not iv.contains_scalar(0.0)
        assert not iv.contains_scalar(10.0)
        assert iv.contains_scalar(5.0)

    def test_inverted_rejected(self):
        with pytest.raises(QueryError):
            TimeInterval(10.0, 0.0)

    def test_unbounded(self):
        iv = TimeInterval(end=100.0)
        assert iv.contains_scalar(-1e12)
        assert not iv.contains_scalar(101.0)

    @given(
        a1=st.floats(-100, 100), w1=st.floats(0, 50),
        a2=st.floats(-100, 100), w2=st.floats(0, 50),
        probe=st.floats(-120, 170),
    )
    @settings(max_examples=80, deadline=None)
    def test_intersection_semantics(self, a1, w1, a2, w2, probe):
        iv1 = TimeInterval(a1, a1 + w1)
        iv2 = TimeInterval(a2, a2 + w2)
        inter = iv1.intersection(iv2)
        expected = iv1.contains_scalar(probe) and iv2.contains_scalar(probe)
        got = inter.contains_scalar(probe) if inter is not None else False
        assert got == expected


class TestIntervalSet:
    def test_union_of_intervals(self):
        ts = TimeIntervalSet.of([(0.0, 1.0), (5.0, 6.0)])
        assert ts.contains_scalar(0.5)
        assert ts.contains_scalar(5.5)
        assert not ts.contains_scalar(3.0)

    def test_bounds_span_all(self):
        ts = TimeIntervalSet.of([(0.0, 1.0), (5.0, 6.0)])
        assert ts.bounds() == (0.0, 6.0)

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            TimeIntervalSet(())


class TestRecurring:
    def test_daily_window(self):
        # 10:00-14:00 every day.
        ts = RecurringInterval(36_000.0, 50_400.0)
        assert ts.contains_scalar(36_000.0)  # day 0, 10:00
        assert ts.contains_scalar(86_400.0 + 40_000.0)  # day 1, ~11:06
        assert not ts.contains_scalar(86_400.0 + 60_000.0)  # day 1, ~16:40
        assert not ts.contains_scalar(50_400.0)  # end exclusive

    def test_validation(self):
        with pytest.raises(QueryError):
            RecurringInterval(-1.0, 10.0)
        with pytest.raises(QueryError):
            RecurringInterval(10.0, 5.0)
        with pytest.raises(QueryError):
            RecurringInterval(0.0, 10.0, period=0.0)

    def test_custom_period(self):
        # First 10 minutes of every hour.
        ts = RecurringInterval(0.0, 600.0, period=3600.0)
        assert ts.contains_scalar(3600.0 * 5 + 300.0)
        assert not ts.contains_scalar(3600.0 * 5 + 900.0)


class TestCombinators:
    def test_intersection(self):
        ts = TimeIntersection((TimeInterval(0.0, 10.0), TimeInterval(5.0, 20.0)))
        assert ts.contains_scalar(7.0)
        assert not ts.contains_scalar(3.0)
        assert ts.bounds() == (5.0, 10.0)

    def test_union(self):
        ts = TimeUnion((TimeInterval(0.0, 1.0), TimeInterval(9.0, 10.0)))
        assert ts.contains_scalar(0.5) and ts.contains_scalar(9.5)
        assert not ts.contains_scalar(5.0)

    def test_intersect_timesets_alltime_identity(self):
        iv = TimeInterval(0.0, 1.0)
        assert intersect_timesets(AllTime(), iv) is iv
        assert intersect_timesets(iv, AllTime()) is iv

    def test_intersect_timesets_simplifies_intervals(self):
        out = intersect_timesets(TimeInterval(0.0, 10.0), TimeInterval(5.0, 20.0))
        assert isinstance(out, TimeInterval)
        assert out.start == 5.0 and out.end == 10.0

    def test_intersect_disjoint_intervals_empty(self):
        out = intersect_timesets(TimeInterval(0.0, 1.0), TimeInterval(5.0, 6.0))
        assert not out.contains_scalar(0.5)
        assert not out.contains_scalar(5.5)
        assert out.definitely_empty

    def test_intersect_mixed_types(self):
        out = intersect_timesets(TimeInterval(0.0, 100.0), RecurringInterval(0.0, 10.0, 50.0))
        assert out.contains_scalar(55.0)
        assert not out.contains_scalar(150.0)
