"""Engine: pipelines, stream merging, statistics reporting."""

import numpy as np
import pytest

from repro.core import FLOAT32, GeoStream, GridChunk, GridLattice, Organization, StreamMetadata
from repro.engine import (
    chunk_time,
    compose_streams,
    format_report,
    iter_pipeline_operators,
    pipeline_report,
)
from repro.engine.scheduler import merge_sources
from repro.errors import StreamError
from repro.geo import LATLON
from repro.operators import Rescale, SpatialRestriction, StreamComposition


def make_stream(stream_id, times, value=1.0):
    lattice = GridLattice(LATLON, 0.0, 1.0, 1.0, -1.0, 4, 1)
    meta = StreamMetadata(stream_id, "b", LATLON, Organization.ROW_BY_ROW, FLOAT32)
    chunks = [
        GridChunk(np.full((1, 4), value, dtype=np.float32), lattice, "b", t)
        for t in times
    ]
    return GeoStream.from_chunks(meta, chunks)


class TestApplyOperators:
    def test_rejects_non_operator(self):
        stream = make_stream("a", [0.0])
        with pytest.raises(StreamError):
            stream.pipe(StreamComposition("+"))  # binary op in unary pipe

    def test_metadata_folded_through(self, small_imager):
        from repro.core import REFLECTANCE
        from repro.operators import CountsToReflectance

        out = small_imager.stream("vis").pipe(CountsToReflectance())
        assert out.metadata.value_set == REFLECTANCE

    def test_operator_chain_order(self):
        stream = make_stream("a", [0.0], value=1.0)
        out = stream.pipe(Rescale(2.0, 0.0), Rescale(1.0, 3.0)).collect_chunks()[0]
        # (1 * 2) + 3, not (1 + 3) * 2.
        assert float(out.values[0, 0]) == 5.0


class TestChunkTime:
    def test_grid_chunk(self):
        stream = make_stream("a", [7.5])
        assert chunk_time(stream.collect_chunks()[0]) == 7.5

    def test_point_chunk(self, scene):
        from repro.ingest import LidarScanner

        lidar = LidarScanner(scene=scene, n_points=10, points_per_chunk=10)
        chunk = lidar.stream().collect_chunks()[0]
        assert chunk_time(chunk) == float(chunk.t[0])


class TestComposeMerging:
    def test_merge_respects_time_order(self):
        """Chunks feed the binary operator in global arrival order."""
        left = make_stream("l", [0.0, 2.0, 4.0], value=1.0)
        right = make_stream("r", [1.0, 3.0, 5.0], value=2.0)
        seen = []

        class Spy(StreamComposition):
            # Spy on the public entry point so the order check holds in
            # both per-point and columnar execution modes.
            def process_side(self, side, chunk):
                seen.append((side, chunk.t))
                return super().process_side(side, chunk)

        out = compose_streams(left, right, Spy("+", timestamp_policy="measured"))
        out.collect_chunks()
        assert seen == [
            ("left", 0.0), ("right", 1.0), ("left", 2.0),
            ("right", 3.0), ("left", 4.0), ("right", 5.0),
        ]

    def test_compose_requires_binary(self):
        left = make_stream("l", [0.0])
        right = make_stream("r", [0.0])
        with pytest.raises(StreamError):
            compose_streams(left, right, Rescale(1.0))


class TestMergeSources:
    def test_global_time_order(self):
        sources = {
            "a": make_stream("a", [0.0, 3.0]),
            "b": make_stream("b", [1.0, 2.0]),
        }
        merged = list(merge_sources(sources))
        times = [chunk_time(c) for _, c in merged]
        assert times == sorted(times)
        ids = [sid for sid, _ in merged]
        assert ids == ["a", "b", "b", "a"]

    def test_tie_broken_by_registration_order(self):
        sources = {
            "x": make_stream("x", [1.0]),
            "y": make_stream("y", [1.0]),
        }
        merged = list(merge_sources(sources))
        assert [sid for sid, _ in merged] == ["x", "y"]

    def test_empty_source_ok(self):
        sources = {"a": make_stream("a", []), "b": make_stream("b", [0.0])}
        merged = list(merge_sources(sources))
        assert len(merged) == 1


class TestReports:
    def test_pipeline_report_walks_dag(self, small_imager):
        from repro.geo import BoundingBox

        box = small_imager.sector_lattice.bbox
        r1 = SpatialRestriction(box)
        vis = small_imager.stream("vis").pipe(r1)
        nir = small_imager.stream("nir").pipe(Rescale(1.0))
        combined = compose_streams(nir, vis, StreamComposition("-"))
        combined.count_points()
        reports = pipeline_report(combined)
        assert len(reports) == 3
        names = [r.name for r in reports]
        assert "spatial-restriction" in names and "composition" in names

    def test_operator_listing_order(self, small_imager):
        op1, op2 = Rescale(1.0), Rescale(2.0)
        out = small_imager.stream("vis").pipe(op1, op2)
        assert list(iter_pipeline_operators(out)) == [op1, op2]

    def test_format_report_renders_table(self, small_imager):
        op = Rescale(2.0)
        out = small_imager.stream("vis").pipe(op)
        out.count_points()
        text = format_report(pipeline_report(out))
        assert "pts_in" in text
        assert str(op.stats.points_in) in text

    def test_format_report_columns_match_report_fields(self, small_imager):
        op = Rescale(2.0)
        out = small_imager.stream("vis").pipe(op)
        out.count_points()
        text = format_report(pipeline_report(out))
        for column in ("chunks_in/out", "mean_wait_s", "max_wait_s"):
            assert column in text
        assert f"{op.stats.chunks_in}/{op.stats.chunks_out}" in text

    def test_format_report_wait_columns_render_values(self, scene):
        # A sequential band scan forces the composition to wait a full
        # band's scan time, so both wait columns must show numbers.
        from repro.geo import goes_geostationary
        from repro.ingest import GOESImager, western_us_sector

        crs = goes_geostationary(-135.0)
        sector = western_us_sector(crs, width=32, height=16)
        imager = GOESImager(
            scene=scene, sector_lattice=sector, n_frames=1,
            band_interleave="band", t0=72_000.0,
        )
        op = StreamComposition("-")
        out = compose_streams(imager.stream("nir"), imager.stream("vis"), op)
        out.count_points()
        report = [r for r in pipeline_report(out) if r.name == "composition"][0]
        text = format_report([report])
        row = text.splitlines()[-1]
        assert f"{report.mean_wait_time:.1f}" in row
        assert f"{report.max_wait_time:.1f}" in row

    def test_multi_operator_pipeline_report_counts(self, small_imager):
        ops = [Rescale(2.0), Rescale(0.5), Rescale(1.0)]
        out = small_imager.stream("vis").pipe(*ops)
        total = out.count_points()
        reports = pipeline_report(out)
        assert [r.name for r in reports] == ["value-transform"] * 3
        # A pointwise chain conserves throughput at every hop.
        for report in reports:
            assert report.points_in == report.points_out == total
            assert report.chunks_in == report.chunks_out
            assert report.accounting_errors == 0


class TestConcurrentIteration:
    """Re-opening a piped stream invalidates in-flight iterators."""

    def test_double_open_raises_stream_error(self):
        stream = make_stream("s", [0.0, 1.0, 2.0]).pipe(Rescale(2.0))
        first = stream.chunks()
        next(first)  # first iteration in progress
        second = stream.chunks()  # re-open resets the shared operators
        next(second)
        with pytest.raises(StreamError, match="re-opened"):
            next(first)

    def test_double_open_of_composition_raises(self):
        left = make_stream("l", [0.0, 1.0])
        right = make_stream("r", [0.0, 1.0])
        composed = compose_streams(left, right, StreamComposition("+"))
        first = composed.chunks()
        next(first)
        second = composed.chunks()
        next(second)
        with pytest.raises(StreamError, match="re-opened"):
            next(first)

    def test_sequential_reiteration_still_works(self):
        stream = make_stream("s", [0.0, 1.0]).pipe(Rescale(2.0))
        a = list(stream.chunks())
        b = list(stream.chunks())
        assert len(a) == len(b) == 2

    def test_stale_iterator_poisoned_even_after_second_finishes(self):
        stream = make_stream("s", [0.0, 1.0, 2.0]).pipe(Rescale(2.0))
        first = stream.chunks()
        next(first)
        list(stream.chunks())  # complete second iteration
        with pytest.raises(StreamError, match="re-opened"):
            next(first)
