"""Contrast stretches (Section 3.2's three scaling approaches)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OperatorError
from repro.raster import (
    StreamingHistogram,
    StreamingMinMax,
    erf,
    erfinv,
    gaussian_stretch,
    histogram_equalize,
    linear_stretch,
    percentile_stretch,
)


class TestLinearStretch:
    def test_full_range_mapping(self):
        out = linear_stretch(np.array([10.0, 20.0, 30.0]), 10.0, 30.0)
        np.testing.assert_allclose(out, [0.0, 127.5, 255.0])

    def test_clipping(self):
        out = linear_stretch(np.array([0.0, 100.0]), 10.0, 30.0)
        np.testing.assert_allclose(out, [0.0, 255.0])

    def test_constant_frame_maps_to_middle(self):
        out = linear_stretch(np.array([5.0, 5.0]), 5.0, 5.0)
        np.testing.assert_allclose(out, [127.5, 127.5])

    def test_custom_output_range(self):
        out = linear_stretch(np.array([0.0, 1.0]), 0.0, 1.0, out_lo=-1.0, out_hi=1.0)
        np.testing.assert_allclose(out, [-1.0, 1.0])

    def test_monotone(self):
        values = np.sort(np.random.default_rng(0).uniform(0, 100, 50))
        out = linear_stretch(values, 0.0, 100.0)
        assert (np.diff(out) >= 0).all()


class TestPercentileStretch:
    def test_robust_to_outliers(self):
        values = np.concatenate([np.linspace(0, 1, 98), [1000.0, -1000.0]])
        out = percentile_stretch(values, 2.0, 98.0)
        # The bulk spans nearly the full output range despite outliers.
        bulk = out[:98]
        assert bulk.max() - bulk.min() > 200.0

    def test_all_nan_rejected(self):
        with pytest.raises(OperatorError):
            percentile_stretch(np.array([np.nan, np.nan]))


class TestHistogramEqualize:
    def test_output_roughly_uniform(self):
        rng = np.random.default_rng(3)
        values = rng.normal(100.0, 10.0, 20_000)
        out = histogram_equalize(values, bins=256)
        # A uniform distribution on [0, 255] has std ~ 73.6.
        assert np.std(out) == pytest.approx(73.6, abs=5.0)

    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(4)
        values = rng.uniform(0, 50, 1000)
        out = histogram_equalize(values)
        order = np.argsort(values, kind="stable")
        assert (np.diff(out[order]) >= -1e-9).all()

    def test_nan_propagates(self):
        out = histogram_equalize(np.array([1.0, np.nan, 2.0, 3.0]))
        assert np.isnan(out[1]) and np.isfinite(out[0])

    def test_constant_input(self):
        out = histogram_equalize(np.full(10, 7.0))
        np.testing.assert_allclose(out, 127.5)


class TestErf:
    @given(x=st.floats(-3.0, 3.0))
    @settings(max_examples=60, deadline=None)
    def test_matches_math_erf(self, x):
        import math

        assert float(erf(x)) == pytest.approx(math.erf(x), abs=2e-7)

    @given(y=st.floats(-0.999, 0.999))
    @settings(max_examples=60, deadline=None)
    def test_erfinv_inverts_erf(self, y):
        assert float(erf(erfinv(y))) == pytest.approx(y, abs=1e-6)

    def test_erfinv_domain_checked(self):
        with pytest.raises(OperatorError):
            erfinv(np.array([1.0]))

    def test_scipy_agreement(self):
        from scipy.special import erfinv as scipy_erfinv

        y = np.linspace(-0.99, 0.99, 41)
        # Accuracy is limited by the A&S erf polynomial (~1.5e-7), which
        # Newton amplifies slightly in the tails.
        np.testing.assert_allclose(erfinv(y), scipy_erfinv(y), atol=5e-6)


class TestGaussianStretch:
    def test_output_roughly_gaussian(self):
        rng = np.random.default_rng(5)
        values = rng.uniform(0, 1, 20_000)  # decidedly non-Gaussian input
        out = gaussian_stretch(values, clip_sigma=3.0)
        # Mean at mid-range, std = 255/6 for a 3-sigma clip.
        assert np.mean(out) == pytest.approx(127.5, abs=2.0)
        assert np.std(out) == pytest.approx(255.0 / 6.0, rel=0.05)

    def test_rank_preserving(self):
        rng = np.random.default_rng(6)
        values = rng.uniform(0, 10, 500)
        out = gaussian_stretch(values)
        order = np.argsort(values, kind="stable")
        assert (np.diff(out[order]) >= -1e-9).all()

    def test_nan_propagates(self):
        out = gaussian_stretch(np.array([1.0, np.nan, 3.0]))
        assert np.isnan(out[1])

    def test_all_nan_rejected(self):
        with pytest.raises(OperatorError):
            gaussian_stretch(np.array([np.nan]))


class TestStreamingMinMax:
    def test_accumulates(self):
        mm = StreamingMinMax()
        mm.update(np.array([3.0, 5.0]))
        mm.update(np.array([1.0, 4.0]))
        assert mm.min == 1.0 and mm.max == 5.0 and mm.range == 4.0
        assert mm.count == 4

    def test_ignores_nan(self):
        mm = StreamingMinMax()
        mm.update(np.array([np.nan, 2.0]))
        assert mm.min == 2.0 and mm.count == 1

    def test_empty_raises(self):
        mm = StreamingMinMax()
        with pytest.raises(OperatorError):
            _ = mm.min

    def test_reset(self):
        mm = StreamingMinMax()
        mm.update(np.array([1.0]))
        mm.reset()
        assert mm.count == 0


class TestStreamingHistogram:
    def test_counts_and_cdf(self):
        h = StreamingHistogram(0.0, 10.0, bins=10)
        h.update(np.array([0.5, 1.5, 1.6, 9.9]))
        assert h.total == 4
        assert h.counts[0] == 1 and h.counts[1] == 2 and h.counts[9] == 1
        cdf = h.cdf()
        assert cdf[-1] == pytest.approx(1.0)
        assert (np.diff(cdf) >= 0).all()

    def test_out_of_range_clipped(self):
        h = StreamingHistogram(0.0, 10.0, bins=10)
        h.update(np.array([-5.0, 15.0]))
        assert h.counts[0] == 1 and h.counts[-1] == 1

    def test_invalid_range_rejected(self):
        with pytest.raises(OperatorError):
            StreamingHistogram(5.0, 5.0)

    def test_empty_cdf_raises(self):
        with pytest.raises(OperatorError):
            StreamingHistogram(0.0, 1.0).cdf()

    def test_bin_of(self):
        h = StreamingHistogram(0.0, 10.0, bins=10)
        np.testing.assert_array_equal(h.bin_of(np.array([0.0, 5.0, 10.0])), [0, 5, 9])

    def test_incremental_equals_batch(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(0, 100, 1000)
        h1 = StreamingHistogram(0.0, 100.0, bins=32)
        for part in np.array_split(values, 7):
            h1.update(part)
        h2 = StreamingHistogram(0.0, 100.0, bins=32)
        h2.update(values)
        np.testing.assert_array_equal(h1.counts, h2.counts)
