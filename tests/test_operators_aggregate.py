"""Spatio-temporal aggregates (ref [27] extension, experiment X1)."""

import numpy as np
import pytest

from repro.core import Organization
from repro.errors import OperatorError
from repro.geo import BoundingBox
from repro.ingest import GOESImager, LidarScanner, western_us_sector
from repro.operators import RegionAggregate, TemporalAggregate

DAY_T0 = 72_000.0


def make_imager(scene, geos_crs, n_frames=4, shape=(12, 24)):
    sector = western_us_sector(geos_crs, width=shape[1], height=shape[0])
    return GOESImager(scene=scene, sector_lattice=sector, n_frames=n_frames, t0=DAY_T0)


class TestTemporalAggregate:
    def test_sliding_mean(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs)
        stream = imager.stream("vis")
        frames = stream.collect_frames()
        out = stream.pipe(TemporalAggregate(window=2, func="mean")).collect_frames()
        assert len(out) == 3  # 4 frames, window 2, sliding
        expected = (frames[0].values.astype(float) + frames[1].values.astype(float)) / 2
        np.testing.assert_allclose(out[0].values, expected, rtol=1e-6)

    def test_tumbling_windows(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, n_frames=4)
        out = imager.stream("vis").pipe(
            TemporalAggregate(window=2, func="max", mode="tumbling")
        ).collect_frames()
        assert len(out) == 2  # non-overlapping pairs

    @pytest.mark.parametrize("func,npfunc", [
        ("min", np.min), ("max", np.max), ("sum", np.sum),
    ])
    def test_reducers(self, scene, geos_crs, func, npfunc):
        imager = make_imager(scene, geos_crs, n_frames=3, shape=(6, 12))
        stream = imager.stream("vis")
        frames = stream.collect_frames()
        out = stream.pipe(TemporalAggregate(window=3, func=func)).collect_frames()[0]
        stack = np.stack([f.values.astype(float) for f in frames])
        np.testing.assert_allclose(out.values, npfunc(stack, axis=0), rtol=1e-6)

    def test_count_ignores_nan(self, scene, geos_crs):
        from repro.operators import ValueRestriction

        imager = make_imager(scene, geos_crs, n_frames=2, shape=(6, 12))
        stream = imager.stream("vis").pipe(ValueRestriction(lo=100.0, hi=400.0))
        out = stream.pipe(TemporalAggregate(window=2, func="count")).collect_frames()[0]
        assert out.values.max() <= 2.0
        assert out.values.min() >= 0.0

    def test_buffer_is_window_times_frame(self, scene, geos_crs):
        """X1: state is N frames of pixels."""
        imager = make_imager(scene, geos_crs, n_frames=4)
        frame_points = imager.sector_lattice.n_points
        for window in (1, 2, 3):
            op = TemporalAggregate(window=window, func="mean")
            imager.stream("vis").pipe(op).count_points()
            # window frames retained plus the frame being collected.
            assert op.stats.max_buffered_points <= (window + 1) * frame_points
            assert op.stats.max_buffered_points >= window * frame_points

    def test_band_renamed(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, n_frames=2, shape=(6, 12))
        out = imager.stream("vis").pipe(TemporalAggregate(window=2, func="max"))
        assert out.metadata.band == "max2(vis)"

    def test_validation(self):
        with pytest.raises(OperatorError):
            TemporalAggregate(window=0)
        with pytest.raises(OperatorError):
            TemporalAggregate(window=2, func="median")
        with pytest.raises(OperatorError):
            TemporalAggregate(window=2, mode="hopping")

    def test_point_stream_rejected(self, scene):
        lidar = LidarScanner(scene=scene, n_points=50, points_per_chunk=50)
        with pytest.raises(OperatorError):
            lidar.stream().pipe(TemporalAggregate(window=2)).collect_chunks()


class TestRegionAggregate:
    def region_of(self, imager, fx0=0.2, fy0=0.2, fx1=0.8, fy1=0.8):
        box = imager.sector_lattice.bbox
        return BoundingBox(
            box.xmin + box.width * fx0,
            box.ymin + box.height * fy0,
            box.xmin + box.width * fx1,
            box.ymin + box.height * fy1,
            box.crs,
        )

    def test_mean_per_frame(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, n_frames=2)
        region = self.region_of(imager)
        stream = imager.stream("vis")
        out = stream.pipe(RegionAggregate({"roi": region}, "mean")).collect_chunks()
        assert len(out) == 2  # one point chunk per frame
        # Verify against a direct computation on the assembled frame.
        frame = stream.collect_frames()[0]
        x, y = frame.lattice.meshgrid()
        mask = region.mask(x, y)
        expected = frame.values[mask].astype(float).mean()
        assert float(out[0].values[0]) == pytest.approx(expected, rel=1e-6)

    def test_multiple_regions_sorted_by_name(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, n_frames=1)
        r1 = self.region_of(imager, 0.0, 0.0, 0.5, 0.5)
        r2 = self.region_of(imager, 0.5, 0.5, 1.0, 1.0)
        out = imager.stream("vis").pipe(
            RegionAggregate({"b_right": r2, "a_left": r1}, "max")
        ).collect_chunks()[0]
        assert out.n_points == 2
        # Point order follows sorted region names; coordinates are centers.
        assert float(out.x[0]) == pytest.approx(r1.center[0])
        assert float(out.x[1]) == pytest.approx(r2.center[0])

    def test_nonblocking_in_point_storage(self, scene, geos_crs):
        """X1: only O(#regions) accumulators, never point data."""
        imager = make_imager(scene, geos_crs, n_frames=2)
        op = RegionAggregate({"roi": self.region_of(imager)}, "mean")
        list(imager.stream("vis").pipe(op).chunks())
        assert op.stats.max_buffered_points == 0

    def test_empty_region_yields_nan(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, n_frames=1)
        box = imager.sector_lattice.bbox
        far = BoundingBox(box.xmax + 1e6, box.ymax + 1e6, box.xmax + 2e6, box.ymax + 2e6, box.crs)
        out = imager.stream("vis").pipe(RegionAggregate({"far": far}, "mean")).collect_chunks()
        assert len(out) == 1
        assert np.isnan(out[0].values[0])

    @pytest.mark.parametrize("func", ["min", "max", "sum", "count"])
    def test_reducers(self, scene, geos_crs, func):
        imager = make_imager(scene, geos_crs, n_frames=1)
        region = self.region_of(imager)
        stream = imager.stream("vis")
        out = stream.pipe(RegionAggregate({"roi": region}, func)).collect_chunks()[0]
        frame = stream.collect_frames()[0]
        x, y = frame.lattice.meshgrid()
        vals = frame.values[region.mask(x, y)].astype(float)
        expected = {"min": vals.min(), "max": vals.max(), "sum": vals.sum(), "count": vals.size}[func]
        assert float(out.values[0]) == pytest.approx(expected, rel=1e-6)

    def test_point_stream_input(self, scene):
        lidar = LidarScanner(scene=scene, n_points=200, points_per_chunk=200)
        chunk = lidar.stream().collect_chunks()[0]
        region = BoundingBox(
            float(chunk.x.min()), float(chunk.y.min()),
            float(chunk.x.max()), float(chunk.y.max()),
            chunk.crs,
        )
        out = lidar.stream().pipe(RegionAggregate({"track": region}, "count")).collect_chunks()
        total = sum(c.values.sum() for c in out)
        assert total == 200

    def test_output_is_point_organization(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, n_frames=1)
        out = imager.stream("vis").pipe(
            RegionAggregate({"roi": self.region_of(imager)}, "mean")
        )
        assert out.metadata.organization is Organization.POINT_BY_POINT

    def test_validation(self, scene, geos_crs):
        with pytest.raises(OperatorError):
            RegionAggregate({}, "mean")
        imager = make_imager(scene, geos_crs, n_frames=1)
        with pytest.raises(OperatorError):
            RegionAggregate({"roi": self.region_of(imager)}, "mode")
