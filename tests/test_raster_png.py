"""PNG codec: round-trips across formats and filters, error handling."""

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra import numpy as hnp

from repro.errors import CodecError
from repro.raster import decode_png, encode_image, encode_png
from repro.raster.png import FILTER_NAMES


class TestRoundTrip:
    @pytest.mark.parametrize("strategy", ["none", "sub", "up", "average", "paeth", "adaptive"])
    def test_gray8_all_filters(self, strategy):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 256, (23, 31), dtype=np.uint8)
        assert (decode_png(encode_png(img, filter_strategy=strategy)) == img).all()

    def test_gray16(self):
        rng = np.random.default_rng(1)
        img = rng.integers(0, 65536, (9, 17), dtype=np.uint16)
        out = decode_png(encode_png(img))
        assert out.dtype == np.uint16
        assert (out == img).all()

    def test_rgb8(self):
        rng = np.random.default_rng(2)
        img = rng.integers(0, 256, (11, 7, 3), dtype=np.uint8)
        out = decode_png(encode_png(img))
        assert out.shape == (11, 7, 3)
        assert (out == img).all()

    def test_single_pixel(self):
        img = np.array([[42]], dtype=np.uint8)
        assert decode_png(encode_png(img))[0, 0] == 42

    def test_gradient_compresses_well(self):
        """Smooth imagery (the satellite case) should compress with filters."""
        row = np.arange(256, dtype=np.uint8)
        img = np.tile(row, (64, 1))
        adaptive = encode_png(img, filter_strategy="adaptive")
        unfiltered = encode_png(img, filter_strategy="none")
        assert len(adaptive) < len(unfiltered)

    @given(
        arr=hnp.arrays(
            dtype=np.uint8,
            shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=24),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip_gray8(self, arr):
        assert (decode_png(encode_png(arr)) == arr).all()

    @given(
        arr=hnp.arrays(
            dtype=np.uint16,
            shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=12),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip_gray16(self, arr):
        assert (decode_png(encode_png(arr)) == arr).all()


class TestEncodeImage:
    def test_float_auto_scales(self):
        img = np.linspace(-1.0, 1.0, 12).reshape(3, 4)
        data = encode_image(img)
        out = decode_png(data)
        assert out.dtype == np.uint8
        assert out.min() == 0 and out.max() == 255

    def test_nan_renders_black(self):
        img = np.array([[np.nan, 1.0], [0.0, 0.5]])
        out = decode_png(encode_image(img))
        assert out[0, 0] == 0

    def test_all_nan_is_black_frame(self):
        out = decode_png(encode_image(np.full((2, 2), np.nan)))
        assert (out == 0).all()

    def test_small_int_types_promoted(self):
        img = np.array([[1, 2], [3, 4]], dtype=np.int32)
        out = decode_png(encode_image(img))
        assert out.dtype == np.uint8

    def test_large_int_promoted_to_16bit(self):
        img = np.array([[1000, 40000]], dtype=np.int64)
        out = decode_png(encode_image(img))
        assert out.dtype == np.uint16

    def test_out_of_range_int_rejected(self):
        with pytest.raises(CodecError):
            encode_image(np.array([[-5]], dtype=np.int32))

    def test_float_without_autoscale_rejected(self):
        with pytest.raises(CodecError):
            encode_image(np.zeros((2, 2)), auto_scale=False)


class TestErrors:
    def test_bad_signature(self):
        with pytest.raises(CodecError, match="signature"):
            decode_png(b"JUNKJUNKJUNK")

    def test_crc_mismatch_detected(self):
        data = bytearray(encode_png(np.zeros((4, 4), dtype=np.uint8)))
        # Corrupt one byte inside the IDAT payload.
        idat = data.find(b"IDAT")
        data[idat + 6] ^= 0xFF
        with pytest.raises(CodecError, match="CRC"):
            decode_png(bytes(data))

    def test_truncated(self):
        data = encode_png(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(CodecError):
            decode_png(data[: len(data) // 2])

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(CodecError):
            encode_png(np.zeros((2, 2), dtype=np.float32))

    def test_bad_shape_rejected(self):
        with pytest.raises(CodecError):
            encode_png(np.zeros((2, 2, 4), dtype=np.uint8))

    def test_unknown_filter_strategy(self):
        with pytest.raises(CodecError):
            encode_png(np.zeros((2, 2), dtype=np.uint8), filter_strategy="bogus")

    def test_interlaced_rejected(self):
        # Hand-build an IHDR with interlace=1.
        ihdr = struct.pack(">IIBBBBB", 1, 1, 8, 0, 0, 0, 1)
        chunk = (
            struct.pack(">I", len(ihdr))
            + b"IHDR"
            + ihdr
            + struct.pack(">I", zlib.crc32(b"IHDR" + ihdr) & 0xFFFFFFFF)
        )
        idat_raw = zlib.compress(b"\x00\x00")
        idat = (
            struct.pack(">I", len(idat_raw))
            + b"IDAT"
            + idat_raw
            + struct.pack(">I", zlib.crc32(b"IDAT" + idat_raw) & 0xFFFFFFFF)
        )
        iend = struct.pack(">I", 0) + b"IEND" + struct.pack(">I", zlib.crc32(b"IEND") & 0xFFFFFFFF)
        data = b"\x89PNG\r\n\x1a\n" + chunk + idat + iend
        with pytest.raises(CodecError, match="[Ii]nterlaced"):
            decode_png(data)

    def test_filter_names_complete(self):
        assert FILTER_NAMES == {"none": 0, "sub": 1, "up": 2, "average": 3, "paeth": 4}
