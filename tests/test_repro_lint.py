"""The custom repo lint (tools/repro_lint.py): every rule, both ways.

Each rule gets a positive case (a synthetic file that must trip it) and
a negative case (the idiomatic form that must not), written into a tmp
tree shaped like the real repo so the path-scoped rules see the paths
they key on. The final test pins the real tree clean — the same
assertion CI makes by running ``python -m tools.repro_lint``.
"""

import pathlib

from tools.repro_lint import Violation, lint_file, lint_paths, main

REPO = pathlib.Path(__file__).parent.parent


def lint_source(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_file(path, tmp_path)


def codes(violations):
    return [v.code for v in violations]


# -- RL001: no timing on the untraced fast path -----------------------------------


def test_rl001_flags_perf_counter_on_fast_path(tmp_path):
    src = "import time\n\ndef f():\n    return time.perf_counter()\n"
    assert codes(lint_source(tmp_path, "src/repro/core/chunk.py", src)) == ["RL001"]


def test_rl001_flags_from_import(tmp_path):
    src = "from time import perf_counter\n"
    assert codes(lint_source(tmp_path, "src/repro/geo/crs.py", src)) == ["RL001"]


def test_rl001_allows_timing_in_obs_and_server(tmp_path):
    src = "import time\n\ndef f():\n    return time.perf_counter()\n"
    for rel in (
        "src/repro/obs/trace.py",
        "src/repro/server/dsms.py",
        "src/repro/engine/scheduler.py",
        "src/repro/cli.py",
        "src/repro/plan/stages.py",
        "src/repro/operators/delivery.py",
    ):
        assert lint_source(tmp_path, rel, src) == []


def test_rl001_ignores_files_outside_the_library(tmp_path):
    src = "import time\nt = time.time()\n"
    assert lint_source(tmp_path, "benchmarks/bench_x.py", src) == []


# -- RL002: no cross-package underscore imports -----------------------------------


def test_rl002_flags_relative_private_import(tmp_path):
    src = "from ..plan import _private_helper\n"
    assert codes(lint_source(tmp_path, "src/repro/query/opt.py", src)) == ["RL002"]


def test_rl002_flags_absolute_private_import(tmp_path):
    src = "from repro.obs.registry import _hidden\n"
    assert codes(lint_source(tmp_path, "src/repro/core/x.py", src)) == ["RL002"]


def test_rl002_allows_same_package_and_public_names(tmp_path):
    src = "from .nodes import _fold\nfrom ..query import ast\nfrom repro.geo import CRS\n"
    assert lint_source(tmp_path, "src/repro/plan/canonical.py", src) == []


def test_rl002_allows_dunder_names(tmp_path):
    src = "from ..plan import __version__\n"
    assert lint_source(tmp_path, "src/repro/query/opt.py", src) == []


# -- RL003: fingerprinted nodes stay frozen ---------------------------------------


def test_rl003_flags_bare_dataclass_in_nodes(tmp_path):
    src = (
        "from dataclasses import dataclass\n\n"
        "@dataclass\nclass SourceScan:\n    stream_id: str\n"
    )
    assert codes(lint_source(tmp_path, "src/repro/plan/nodes.py", src)) == ["RL003"]


def test_rl003_flags_frozen_false_in_ast(tmp_path):
    src = (
        "from dataclasses import dataclass\n\n"
        "@dataclass(frozen=False)\nclass StreamRef:\n    stream_id: str\n"
    )
    assert codes(lint_source(tmp_path, "src/repro/query/ast.py", src)) == ["RL003"]


def test_rl003_accepts_frozen_and_ignores_other_files(tmp_path):
    frozen = (
        "from dataclasses import dataclass\n\n"
        "@dataclass(frozen=True)\nclass SourceScan:\n    stream_id: str\n"
    )
    assert lint_source(tmp_path, "src/repro/plan/nodes.py", frozen) == []
    mutable = "from dataclasses import dataclass\n\n@dataclass\nclass State:\n    n: int\n"
    assert lint_source(tmp_path, "src/repro/engine/state.py", mutable) == []


# -- RL004: registry mutations only under the lock --------------------------------


def test_rl004_flags_unlocked_mutations(tmp_path):
    src = (
        "class MetricsRegistry:\n"
        "    def put(self, k, v):\n"
        "        self._metrics[k] = v\n"
        "    def reset(self):\n"
        "        self._metrics.clear()\n"
    )
    assert codes(lint_source(tmp_path, "src/repro/obs/registry.py", src)) == [
        "RL004",
        "RL004",
    ]


def test_rl004_allows_locked_mutations_and_reads(tmp_path):
    src = (
        "class MetricsRegistry:\n"
        "    def put(self, k, v):\n"
        "        with self._lock:\n"
        "            self._metrics[k] = v\n"
        "    def get(self, k):\n"
        "        return self._metrics.get(k)\n"
    )
    assert lint_source(tmp_path, "src/repro/obs/registry.py", src) == []


def test_rl004_scoped_to_the_registry_file(tmp_path):
    src = "class X:\n    def put(self, k, v):\n        self._metrics[k] = v\n"
    assert lint_source(tmp_path, "src/repro/obs/export.py", src) == []


# -- RL005: no unseeded random in repro.faults ------------------------------------


def test_rl005_flags_module_level_random(tmp_path):
    src = "import random\n\ndef roll():\n    return random.random()\n"
    assert codes(lint_source(tmp_path, "src/repro/faults/injector.py", src)) == ["RL005"]


def test_rl005_flags_from_import_and_numpy_global(tmp_path):
    src = "from random import choice\n"
    assert codes(lint_source(tmp_path, "src/repro/faults/spec.py", src)) == ["RL005"]
    src = "import numpy as np\n\ndef roll():\n    return np.random.rand()\n"
    assert codes(lint_source(tmp_path, "src/repro/faults/chaos.py", src)) == ["RL005"]


def test_rl005_allows_seeded_random_instances(tmp_path):
    src = (
        "from random import Random\nimport random\n\n"
        "def make(seed):\n    return random.Random(seed)\n"
    )
    assert lint_source(tmp_path, "src/repro/faults/injector.py", src) == []


def test_rl005_scoped_to_faults(tmp_path):
    src = "import random\nx = random.random()\n"
    assert lint_source(tmp_path, "src/repro/ingest/scene.py", src) == []


# -- RL006: stage-table mutation only inside EpochTransition ----------------------


def test_rl006_flags_mutating_calls(tmp_path):
    src = (
        "def hack(dag, stage):\n"
        "    dag.order.append(stage)\n"
        "    stage.subscribers.add(7)\n"
        "    stage.outputs.clear()\n"
    )
    assert codes(lint_source(tmp_path, "src/repro/server/dsms.py", src)) == [
        "RL006",
        "RL006",
        "RL006",
    ]


def test_rl006_flags_subscript_assignment_and_deletion(tmp_path):
    src = (
        "def hack(dag, stage):\n"
        "    dag._by_fingerprint['fp'] = stage\n"
        "    dag.taps['goes.vis'] = []\n"
        "    del dag._by_fingerprint['fp']\n"
        "    stage.epochs[1] = 2\n"
    )
    assert codes(lint_source(tmp_path, "src/repro/plan/stages.py", src)) == [
        "RL006"
    ] * 4


def test_rl006_flags_rebinding_outside_init(tmp_path):
    src = "def hack(dag):\n    dag.order = []\n"
    assert codes(lint_source(tmp_path, "src/repro/plan/stages.py", src)) == ["RL006"]


def test_rl006_allows_init_construction_and_reads(tmp_path):
    src = (
        "class Stage:\n"
        "    def __init__(self):\n"
        "        self.outputs = []\n"
        "        self.subscribers = set()\n"
        "        self.epochs = {}\n"
        "def read(dag):\n"
        "    return [s for s in dag.order if dag.taps.get('x')]\n"
    )
    assert lint_source(tmp_path, "src/repro/plan/stages.py", src) == []


def test_rl006_exempts_epoch_transition_module(tmp_path):
    src = "def wire(dag, stage):\n    dag.order.append(stage)\n"
    assert lint_source(tmp_path, "src/repro/plan/epoch.py", src) == []


def test_rl006_scoped_to_the_library(tmp_path):
    src = "def hack(dag, stage):\n    dag.order.append(stage)\n"
    assert lint_source(tmp_path, "tests/test_x.py", src) == []


# -- RL007: telemetry timeline is logical-clock only ------------------------------


def test_rl007_flags_time_import_in_timeline(tmp_path):
    src = "import time\n\ndef now():\n    return time.time()\n"
    found = codes(lint_source(tmp_path, "src/repro/obs/timeline.py", src))
    assert found == ["RL007", "RL007"]  # the import and the attribute read


def test_rl007_flags_from_import_and_datetime(tmp_path):
    src = "from time import monotonic\n"
    assert codes(lint_source(tmp_path, "src/repro/obs/timeline.py", src)) == ["RL007"]
    src = "import datetime\n\nstamp = datetime.datetime.now()\n"
    found = codes(lint_source(tmp_path, "src/repro/obs/timeline.py", src))
    assert "RL007" in found


def test_rl007_stricter_than_rl001_obs_whitelist(tmp_path):
    # The same source is fine elsewhere in repro.obs (RL001 whitelists the
    # package) but forbidden in the timeline module specifically.
    src = "import time\n\ndef now():\n    return time.perf_counter()\n"
    assert lint_source(tmp_path, "src/repro/obs/trace.py", src) == []
    assert "RL007" in codes(lint_source(tmp_path, "src/repro/obs/timeline.py", src))


def test_rl007_allows_logical_clock_code(tmp_path):
    src = (
        "from collections import deque\n\n"
        "class MetricStore:\n"
        "    def maybe_sample(self, now):\n"
        "        self._last_t = float(now)\n"
    )
    assert lint_source(tmp_path, "src/repro/obs/timeline.py", src) == []


# -- framework --------------------------------------------------------------------


def test_rl000_syntax_error(tmp_path):
    assert codes(lint_source(tmp_path, "src/repro/core/bad.py", "def f(:\n")) == ["RL000"]


def test_violation_render_is_grep_friendly():
    v = Violation("src/repro/x.py", 3, 4, "RL001", "boom")
    assert v.render() == "src/repro/x.py:3:4: RL001 boom"


def test_main_exit_codes(tmp_path, capsys, monkeypatch):
    # Paths are resolved against the working directory, like CI runs it.
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "src/repro/faults"
    bad.mkdir(parents=True)
    (bad / "dice.py").write_text("import random\nx = random.random()\n")
    assert main(["src/repro/faults/dice.py"]) == 1
    assert "RL005" in capsys.readouterr().out
    good = tmp_path / "src/repro/core/ok.py"
    good.parent.mkdir(parents=True)
    good.write_text("x = 1\n")
    assert main(["src/repro/core/ok.py"]) == 0
    assert "clean" in capsys.readouterr().out


def test_real_tree_is_clean():
    violations = lint_paths(["src/repro"], root=REPO)
    assert violations == [], "\n".join(v.render() for v in violations)
