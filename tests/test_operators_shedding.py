"""Load shedding operators (DSMS overload techniques from the intro)."""

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.ingest import LidarScanner
from repro.operators import AdaptiveLoadShedder, FrameSubsampler


class TestFrameSubsampler:
    def test_keep_every_2(self, small_imager):
        op = FrameSubsampler(2)
        frames = small_imager.stream("vis").pipe(op).collect_frames()
        assert len(frames) == 1  # 2 frames in, keep frame 0
        assert frames[0].sector == 0
        assert op.frames_seen == 2 and op.frames_shed == 1

    def test_phase_offset(self, small_imager):
        op = FrameSubsampler(2, phase=1)
        frames = small_imager.stream("vis").pipe(op).collect_frames()
        assert len(frames) == 1
        assert frames[0].sector == 1

    def test_keep_every_1_is_identity(self, small_imager):
        op = FrameSubsampler(1)
        stream = small_imager.stream("vis")
        assert stream.pipe(op).count_points() == stream.count_points()
        assert op.frames_shed == 0

    def test_kept_frames_are_complete(self, small_imager):
        op = FrameSubsampler(2)
        frames = small_imager.stream("vis").pipe(op).collect_frames()
        assert frames[0].n_points == small_imager.sector_lattice.n_points
        assert not np.isnan(frames[0].values.astype(float)).any()

    def test_nonblocking(self, small_imager):
        op = FrameSubsampler(2)
        small_imager.stream("vis").pipe(op).count_points()
        assert op.stats.max_buffered_points == 0

    def test_point_streams_pass_through(self, scene):
        lidar = LidarScanner(scene=scene, n_points=100, points_per_chunk=50)
        op = FrameSubsampler(2)
        out = lidar.stream().pipe(op)
        assert out.count_points() == 100

    def test_validation(self):
        with pytest.raises(OperatorError):
            FrameSubsampler(0)

    def test_reset_restores_phase(self, small_imager):
        op = FrameSubsampler(2)
        piped = small_imager.stream("vis").pipe(op)
        first = [f.sector for f in piped.collect_frames()]
        second = [f.sector for f in piped.collect_frames()]
        assert first == second  # reset between iterations


class TestAdaptiveLoadShedder:
    def test_no_shedding_when_budget_covers_downlink(self, small_imager):
        frame_points = small_imager.sector_lattice.n_points
        op = AdaptiveLoadShedder(points_per_frame_budget=frame_points)
        frames = small_imager.stream("vis").pipe(op).collect_frames()
        assert len(frames) == 2
        assert op.shed_fraction == 0.0

    def test_half_budget_sheds_half(self, scene, geos_crs):
        from repro.ingest import GOESImager, western_us_sector

        sector = western_us_sector(geos_crs, width=32, height=16)
        imager = GOESImager(scene=scene, sector_lattice=sector, n_frames=8, t0=72_000.0)
        op = AdaptiveLoadShedder(points_per_frame_budget=sector.n_points * 0.5)
        frames = imager.stream("vis").pipe(op).collect_frames()
        assert len(frames) == 4
        assert op.shed_fraction == pytest.approx(0.5)

    def test_sheds_whole_frames(self, small_imager):
        frame_points = small_imager.sector_lattice.n_points
        op = AdaptiveLoadShedder(points_per_frame_budget=frame_points * 0.5)
        frames = small_imager.stream("vis").pipe(op).collect_frames()
        for f in frames:
            assert f.n_points == frame_points

    def test_points_shed_accounted(self, small_imager):
        frame_points = small_imager.sector_lattice.n_points
        op = AdaptiveLoadShedder(points_per_frame_budget=frame_points * 0.5)
        small_imager.stream("vis").pipe(op).count_points()
        assert op.points_shed == op.frames_shed * frame_points

    def test_credit_capped(self, small_imager):
        """A long idle gap must not allow an unbounded burst afterwards."""
        frame_points = small_imager.sector_lattice.n_points
        op = AdaptiveLoadShedder(
            points_per_frame_budget=frame_points * 0.4,
            max_credit=frame_points * 0.8,
        )
        small_imager.stream("vis").pipe(op).collect_frames()
        assert op._credit <= frame_points * 0.8

    def test_nonblocking(self, small_imager):
        op = AdaptiveLoadShedder(points_per_frame_budget=1.0)
        small_imager.stream("vis").pipe(op).count_points()
        assert op.stats.max_buffered_points == 0

    def test_validation(self):
        with pytest.raises(OperatorError):
            AdaptiveLoadShedder(points_per_frame_budget=0.0)

    def test_point_streams_pass_through(self, scene):
        lidar = LidarScanner(scene=scene, n_points=100, points_per_chunk=50)
        op = AdaptiveLoadShedder(points_per_frame_budget=1.0)
        assert lidar.stream().pipe(op).count_points() == 100
