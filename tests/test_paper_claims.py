"""Integration tests: every evaluation-relevant claim of the paper.

The EDBT 2006 paper has no numeric tables; its evaluation content is a
set of behavioural/complexity claims (Sections 3-4) plus Figures 1-3.
Each test here is the assertion form of one claim; the `benchmarks/`
directory measures the same claims quantitatively (see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.core import Organization
from repro.engine import compose_streams
from repro.geo import BoundingBox, haversine_m, plate_carree, utm
from repro.ingest import AirborneCamera, GOESImager, LidarScanner, western_us_sector
from repro.operators import (
    Coarsen,
    FrameStretch,
    Magnify,
    Reproject,
    SpatialRestriction,
    StreamComposition,
    TemporalRestriction,
    ValueRestriction,
)
from repro.query import ast as q, optimize
from repro.server import DSMSServer, StreamCatalog

DAY_T0 = 72_000.0


def subbox(imager, fx0, fy0, fx1, fy1):
    box = imager.sector_lattice.bbox
    return BoundingBox(
        box.xmin + box.width * fx0,
        box.ymin + box.height * fy0,
        box.xmin + box.width * fx1,
        box.ymin + box.height * fy1,
        box.crs,
    )


class TestClaimE1Restrictions:
    """Section 3.1: all restrictions are non-blocking, O(1)/point, zero storage."""

    def test_all_three_restrictions_zero_buffer(self, small_imager):
        from repro.core import TimeInterval

        ops = [
            SpatialRestriction(subbox(small_imager, 0.2, 0.2, 0.8, 0.8)),
            TemporalRestriction(TimeInterval(0.0, 1e12)),
            ValueRestriction(lo=0.0, hi=1e9),
        ]
        stream = small_imager.stream("vis").pipe(*ops)
        stream.count_points()
        for op in ops:
            assert op.stats.max_buffered_points == 0, op.name

    def test_buffer_independent_of_stream_size(self, scene, geos_crs):
        """Constant cost 'independent of the size of the input stream'."""
        for n_frames in (1, 4):
            sector = western_us_sector(geos_crs, width=64, height=32)
            imager = GOESImager(scene=scene, sector_lattice=sector, n_frames=n_frames, t0=DAY_T0)
            op = SpatialRestriction(subbox(imager, 0.2, 0.2, 0.8, 0.8))
            imager.stream("vis").pipe(op).count_points()
            assert op.stats.max_buffered_points == 0


class TestClaimE2ValueTransforms:
    """Section 3.2: stretch cost = largest frame; pointwise = zero."""

    def test_stretch_buffer_tracks_frame_size(self, scene, geos_crs):
        sizes = [(16, 32), (32, 64)]
        for h, w in sizes:
            sector = western_us_sector(geos_crs, width=w, height=h)
            imager = GOESImager(scene=scene, sector_lattice=sector, n_frames=1, t0=DAY_T0)
            op = FrameStretch("linear")
            imager.stream("vis").pipe(op).count_points()
            assert op.stats.max_buffered_points == h * w

    def test_goes_vis_frame_memory_math(self):
        """The paper's concrete figure: 20,840 x 10,820 points ~ 280 MB."""
        from repro.ingest import GOES_VIS_FRAME_SHAPE

        h, w = GOES_VIS_FRAME_SHAPE
        # 10-bit counts stored as 16-bit words, plus filesystem slack, is
        # what the paper rounds to "approx. 280MB"; the raw point count is
        # ~225 million, i.e. 215 MB at 1 byte or 430 MB at 2 bytes.
        points = h * w
        assert points == pytest.approx(225_500_000, rel=0.01)
        approx_mb = points * 1.25 / 1e6  # 10 bits/point
        assert 250 < approx_mb < 300  # the paper's ~280 MB


class TestClaimE3SpatialTransforms:
    """Fig. 2a: magnify buffers nothing; coarsen buffers a k-row band."""

    def test_asymmetry(self, small_imager):
        mag = Magnify(3)
        small_imager.stream("vis").pipe(mag).count_points()
        assert mag.stats.max_buffered_points == 0

        for k in (2, 3, 4, 6):
            coarse = Coarsen(k)
            small_imager.stream("vis").pipe(coarse).count_points()
            assert coarse.stats.max_buffered_points == k * small_imager.sector_lattice.width


class TestClaimE4Reprojection:
    """Section 3.2 / Fig. 2b: metadata bounds re-projection buffering."""

    def test_row_band_buffering_with_metadata(self, small_imager):
        op = Reproject(plate_carree())
        small_imager.stream("vis").pipe(op).count_points()
        frame = small_imager.sector_lattice.n_points
        assert 0 < op.stats.max_buffered_points < frame / 2

    def test_blocking_hazard_without_metadata(self, small_imager):
        """Without scan metadata the operator 'could potentially block
        forever' — we surface it as an error instead."""
        from dataclasses import replace

        from repro.core import GeoStream
        from repro.errors import BlockingHazardError

        stream = small_imager.stream("vis")
        stripped = GeoStream(
            stream.metadata,
            lambda: (replace(c, frame=None, last_in_frame=False) for c in stream.chunks()),
        )
        with pytest.raises(BlockingHazardError):
            stripped.pipe(Reproject(plate_carree())).collect_chunks()


class TestClaimE5CompositionBuffering:
    """Section 3.3: composition buffering follows the organization."""

    @pytest.mark.parametrize(
        "organization,expected_buffer_key",
        [
            (Organization.ROW_BY_ROW, "row"),
            (Organization.IMAGE_BY_IMAGE, "frame"),
        ],
    )
    def test_buffering(self, scene, geos_crs, organization, expected_buffer_key):
        sector = western_us_sector(geos_crs, width=32, height=16)
        imager = GOESImager(
            scene=scene, sector_lattice=sector, n_frames=2,
            organization=organization, t0=DAY_T0,
        )
        op = StreamComposition("-")
        compose_streams(imager.stream("nir"), imager.stream("vis"), op).count_points()
        expected = {
            "row": sector.width,
            "frame": sector.n_points,
        }[expected_buffer_key]
        assert op.stats.max_buffered_points == expected


class TestClaimE6Timestamping:
    """Section 3.3: measured-time stamps never match; sector ids do."""

    def test_both_policies(self, scene, geos_crs):
        sector = western_us_sector(geos_crs, width=32, height=16)
        imager = GOESImager(
            scene=scene, sector_lattice=sector, n_frames=2,
            band_interleave="band", t0=DAY_T0,
        )
        measured = StreamComposition("-", timestamp_policy="measured")
        out = compose_streams(imager.stream("nir"), imager.stream("vis"), measured)
        assert out.count_points() == 0

        sectored = StreamComposition("-", timestamp_policy="sector")
        out = compose_streams(imager.stream("nir"), imager.stream("vis"), sectored)
        assert out.count_points() == imager.stream("vis").count_points()


class TestClaimE7Rewriting:
    """Section 3.4: restriction pushdown gives the biggest gains."""

    def test_paper_example_rewrite_and_gain(self, small_imager, catalog):
        utm10 = utm(10)
        x0, y0 = (float(v) for v in utm10.from_lonlat(-122.0, 38.0))
        x1, y1 = (float(v) for v in utm10.from_lonlat(-120.5, 39.5))
        region = BoundingBox(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1), utm10)
        tree = q.SpatialRestrict(
            q.Reproject(
                q.Stretch(
                    q.Compose(
                        q.ValueMap(q.StreamRef("goes.nir"), "reflectance", (("bits", 10.0),)),
                        q.ValueMap(q.StreamRef("goes.vis"), "reflectance", (("bits", 10.0),)),
                        "ndvi",
                    ),
                    "linear",
                ),
                utm10,
            ),
            region,
        )
        result = optimize(tree, dict(catalog.crs_of()))
        for rule in (
            "push-spatial-reproject",
            "push-spatial-stretch",
            "push-spatial-compose",
            "push-spatial-valuemap",
        ):
            assert rule in result.applied, rule

        from repro.engine import pipeline_report
        from repro.query import plan_query

        sources = {sid: catalog.get(sid) for sid in catalog.ids()}
        naive = plan_query(tree, sources)
        optimized = plan_query(result.node, sources)
        naive.collect_frames()
        optimized.collect_frames()

        def stats_of(stream, name):
            return [r for r in pipeline_report(stream) if r.name == name]

        naive_stretch = stats_of(naive, "frame-stretch")[0]
        opt_stretch = stats_of(optimized, "frame-stretch")[0]
        # The stretch (and everything downstream of the pruning) touches
        # far fewer points and buffers a far smaller frame.
        assert opt_stretch.points_in < naive_stretch.points_in / 10
        assert opt_stretch.max_buffered_points < naive_stretch.max_buffered_points / 10


class TestClaimE8SharedRestriction:
    """Section 4: the cascade tree routes data only to interested queries."""

    def test_prune_fraction_grows_with_disjoint_queries(self, small_imager):
        def run(n_queries):
            catalog = StreamCatalog()
            catalog.register_imager(small_imager)
            server = DSMSServer(catalog)
            for i in range(n_queries):
                f = i / n_queries
                region = subbox(small_imager, f, f, min(f + 0.05, 1.0), min(f + 0.05, 1.0))
                server.register(
                    q.SpatialRestrict(q.StreamRef("goes.vis"), region), encode_png=False
                )
            return server.run()

        few = run(2)
        many = run(8)
        # Small disjoint regions keep the prune fraction high regardless of
        # query count, and the absolute pruning work saved grows with it.
        assert few.prune_fraction > 0.7
        assert many.prune_fraction > 0.7
        assert many.pairs_skipped > few.pairs_skipped


class TestFigure1Organizations:
    """Fig. 1: the three point organizations and the proximity property."""

    def proximity_stats(self, chunks_xy):
        """Mean distance between consecutive points, and the max jump."""
        x = np.concatenate([c[0] for c in chunks_xy])
        y = np.concatenate([c[1] for c in chunks_xy])
        d = haversine_m(x[:-1], y[:-1], x[1:], y[1:])
        return float(np.median(d)), float(np.max(d))

    def test_airborne_image_by_image_jumps_at_frame_boundaries(self, scene):
        cam = AirborneCamera(scene=scene, n_frames=3, frame_width=16, frame_height=12,
                             frame_spacing_deg=0.5)
        stream = cam.stream()
        assert stream.organization is Organization.IMAGE_BY_IMAGE
        chunks = stream.collect_chunks()
        # Within a frame: close spatial proximity.
        lon, lat = chunks[0].flat_coords()
        d_within = haversine_m(lon[:-1], lat[:-1], lon[1:], lat[1:])
        # Between frames: a jump.
        lon2, lat2 = chunks[1].flat_coords()
        d_between = float(haversine_m(lon[-1], lat[-1], lon2[0], lat2[0]))
        assert d_between > 10 * float(np.median(d_within))

    def test_goes_row_by_row_continuous(self, small_imager):
        stream = small_imager.stream("vis")
        assert stream.organization is Organization.ROW_BY_ROW
        chunks = stream.collect_chunks()[:48]  # one frame
        # Consecutive rows are spatially adjacent in the fixed grid.
        y_coords = [c.lattice.y_of_row(0) for c in chunks]
        dy = np.abs(np.diff(np.asarray(y_coords, dtype=float)))
        assert np.allclose(dy, dy[0])

    def test_lidar_point_by_point_time_ordered_only(self, scene):
        lidar = LidarScanner(scene=scene, n_points=400, points_per_chunk=100)
        stream = lidar.stream()
        assert stream.organization is Organization.POINT_BY_POINT
        chunks = stream.collect_chunks()
        t = np.concatenate([c.t for c in chunks])
        assert (np.diff(t) > 0).all()
        # Spacing between consecutive points is irregular (no lattice).
        x = np.concatenate([c.x for c in chunks])
        y = np.concatenate([c.y for c in chunks])
        d = haversine_m(x[:-1], y[:-1], x[1:], y[1:])
        assert np.std(d) > 0


class TestFigure3EndToEnd:
    """Fig. 3: satellites -> generator -> parse/optimize/execute -> delivery."""

    def test_full_architecture(self, small_imager):
        catalog = StreamCatalog()
        catalog.register_imager(small_imager)
        server = DSMSServer(catalog)

        box = subbox(small_imager, 0.2, 0.2, 0.7, 0.7)
        text = (
            "within(stretch(ndvi(reflectance(goes.nir), reflectance(goes.vis)),"
            f" 'linear'), bbox({box.xmin!r}, {box.ymin!r}, {box.xmax!r}, {box.ymax!r},"
            " crs='geos:-135'))"
        )
        from repro.server import format_query_request

        session = server.handle_request(format_query_request(text))
        server.run()
        assert len(session.frames) == 2
        from repro.raster import decode_png

        decoded = decode_png(session.frames[0].png)
        assert decoded.ndim == 2 and decoded.size > 0
        assert session.applied_rules  # optimizer did rewrite the query
