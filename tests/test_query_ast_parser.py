"""Query AST structure and the textual query language."""

import pytest

from repro.core import RecurringInterval, TimeInterval
from repro.errors import QueryError, QuerySyntaxError
from repro.geo import BoundingBox, ConstraintRegion, PolygonRegion, utm
from repro.query import ast as q, parse_query, resolve_crs


class TestASTBasics:
    def test_children_and_with_children(self):
        tree = q.SpatialRestrict(q.StreamRef("s"), BoundingBox(0, 0, 1, 1))
        assert tree.children == (q.StreamRef("s"),)
        new = tree.with_children(q.StreamRef("t"))
        assert new.children == (q.StreamRef("t"),)
        assert new.region == tree.region

    def test_with_children_arity_checked(self):
        tree = q.Compose(q.StreamRef("a"), q.StreamRef("b"), "+")
        with pytest.raises(QueryError):
            tree.with_children(q.StreamRef("x"))

    def test_walk_preorder(self):
        tree = q.Compose(
            q.ValueMap(q.StreamRef("a"), "negate"),
            q.StreamRef("b"),
            "-",
        )
        kinds = [type(n).__name__ for n in q.walk(tree)]
        assert kinds == ["Compose", "ValueMap", "StreamRef", "StreamRef"]
        assert q.count_nodes(tree) == 4

    def test_equality_structural(self):
        a = q.Stretch(q.StreamRef("s"), "linear")
        b = q.Stretch(q.StreamRef("s"), "linear")
        assert a == b
        assert a != q.Stretch(q.StreamRef("s"), "equalize")

    def test_pretty_renders_tree(self):
        tree = q.Reproject(q.StreamRef("goes.vis"), utm(10))
        text = tree.pretty()
        assert "Reproject" in text and "goes.vis" in text

    def test_value_map_param_lookup(self):
        vm = q.ValueMap(q.StreamRef("s"), "rescale", (("gain", 2.0),))
        assert vm.param("gain") == 2.0
        assert vm.param("offset", 0.0) == 0.0
        with pytest.raises(QueryError):
            vm.param("missing")


class TestResolveCrs:
    def test_named_crs(self):
        assert resolve_crs("latlon").is_geographic
        assert resolve_crs("utm:10") == utm(10)
        assert resolve_crs("utm:33S") == utm(33, north=False)
        assert resolve_crs("geos:-75").name.startswith("geos")
        assert resolve_crs("plate_carree").units == "meter"

    def test_case_insensitive(self):
        assert resolve_crs("UTM:10N") == utm(10)

    def test_unknown_rejected(self):
        with pytest.raises(QuerySyntaxError):
            resolve_crs("epsg:4326")
        with pytest.raises(QuerySyntaxError):
            resolve_crs("utm:xx")


class TestParserExpressions:
    def test_stream_ref(self):
        assert parse_query("goes.vis") == q.StreamRef("goes.vis")

    def test_infix_composition(self):
        tree = parse_query("goes.nir - goes.vis")
        assert tree == q.Compose(q.StreamRef("goes.nir"), q.StreamRef("goes.vis"), "-")

    def test_precedence(self):
        tree = parse_query("a + b * c")
        assert isinstance(tree, q.Compose) and tree.gamma == "+"
        assert isinstance(tree.right, q.Compose) and tree.right.gamma == "*"

    def test_parentheses(self):
        tree = parse_query("(a + b) * c")
        assert tree.gamma == "*"
        assert tree.left.gamma == "+"

    def test_ndvi_expression_shape(self):
        """The paper's (G1 - G2) / (G2 + G1)."""
        tree = parse_query("(g1 - g2) / (g2 + g1)")
        assert tree.gamma == "/"
        assert tree.left.gamma == "-" and tree.right.gamma == "+"

    def test_stream_by_constant_becomes_rescale(self):
        tree = parse_query("goes.vis / 1023.0")
        assert isinstance(tree, q.ValueMap)
        assert tree.kind == "rescale"
        assert tree.param("gain") == pytest.approx(1 / 1023.0)

    def test_constant_folding(self):
        tree = parse_query("rescale(goes.vis, 2 * 3, 1 + 1)")
        assert tree.param("gain") == 6.0
        assert tree.param("offset") == 2.0

    def test_unary_minus_stream(self):
        tree = parse_query("-goes.vis")
        assert isinstance(tree, q.ValueMap)
        assert tree.param("gain") == -1.0

    def test_negative_number_literal(self):
        tree = parse_query("goes.vis + -5")
        assert tree.param("offset") == -5.0

    def test_binary_minus_after_ref(self):
        tree = parse_query("a-5")
        assert isinstance(tree, q.ValueMap)
        assert tree.param("offset") == -5.0

    def test_constant_over_stream_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("5 / goes.vis")

    def test_bare_number_not_a_query(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("42")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("goes.vis goes.nir")

    def test_unclosed_paren(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("(goes.vis")


class TestParserFunctions:
    def test_within_bbox(self):
        tree = parse_query("within(goes.vis, bbox(0, 0, 10, 5, crs='latlon'))")
        assert isinstance(tree, q.SpatialRestrict)
        assert isinstance(tree.region, BoundingBox)
        assert tree.region.xmax == 10.0

    def test_within_polygon(self):
        tree = parse_query("within(s, polygon(0,0, 4,0, 0,4))")
        assert isinstance(tree.region, PolygonRegion)

    def test_within_disk(self):
        tree = parse_query("within(s, disk(1, 2, 3))")
        assert isinstance(tree.region, ConstraintRegion)

    def test_during(self):
        tree = parse_query("during(s, 100, 200)")
        assert isinstance(tree, q.TemporalRestrict)
        assert isinstance(tree.timeset, TimeInterval)
        assert not tree.on_sector
        assert tree.timeset.contains_scalar(150.0)
        assert not tree.timeset.contains_scalar(200.0)  # end-exclusive

    def test_sectors(self):
        tree = parse_query("sectors(s, 2, 5)")
        assert tree.on_sector
        assert tree.timeset.contains_scalar(5.0)  # inclusive

    def test_daily(self):
        tree = parse_query("daily(s, 36000, 50400)")
        assert isinstance(tree.timeset, RecurringInterval)

    def test_vrange(self):
        tree = parse_query("vrange(s, 0.2, 0.8)")
        assert isinstance(tree, q.ValueRestrict)
        assert tree.lo == 0.2 and tree.hi == 0.8

    def test_stretch_variants(self):
        assert parse_query("stretch(s)").kind == "linear"
        assert parse_query("stretch(s, 'gaussian')").kind == "gaussian"
        assert parse_query("equalize(s)").kind == "equalize"
        assert parse_query("gaussian(s)").kind == "gaussian"

    def test_reflectance(self):
        tree = parse_query("reflectance(s, 8)")
        assert isinstance(tree, q.ValueMap)
        assert tree.param("bits") == 8.0

    def test_zoom_and_rotate(self):
        assert parse_query("magnify(s, 3)").k == 3
        assert parse_query("coarsen(s, 4)").k == 4
        assert parse_query("rotate(s, 45)").angle_deg == 45.0

    def test_reproject(self):
        tree = parse_query("reproject(s, 'utm:10')")
        assert isinstance(tree, q.Reproject)
        assert tree.dst_crs == utm(10)
        assert tree.method == "bilinear"

    def test_reproject_method_kwarg(self):
        tree = parse_query("reproject(s, 'utm:10', method='bicubic')")
        assert tree.method == "bicubic"

    def test_macros(self):
        tree = parse_query("ndvi(goes.nir, goes.vis)")
        assert isinstance(tree, q.Compose) and tree.gamma == "ndvi"
        assert parse_query("evi2(a, b)").gamma == "evi2"
        assert parse_query("sup(a, b)").gamma == "sup"

    def test_aggregates(self):
        tree = parse_query("tagg(s, 'max', 4, mode='tumbling')")
        assert isinstance(tree, q.TemporalAgg)
        assert (tree.func, tree.window, tree.mode) == ("max", 4, "tumbling")
        tree = parse_query("ragg(s, 'mean', 'roi', bbox(0,0,1,1))")
        assert isinstance(tree, q.RegionAgg)
        assert tree.regions[0][0] == "roi"

    def test_nested_paper_example(self):
        text = (
            "within(reproject(stretch(ndvi(g1, g2), 'linear'), 'utm:10'),"
            " bbox(500000, 4200000, 700000, 4400000, crs='utm:10'))"
        )
        tree = parse_query(text)
        kinds = [type(n).__name__ for n in q.walk(tree)]
        assert kinds == ["SpatialRestrict", "Reproject", "Stretch", "Compose", "StreamRef", "StreamRef"]

    def test_unknown_function_lists_available(self):
        with pytest.raises(QuerySyntaxError, match="available"):
            parse_query("frobnicate(s)")

    def test_kwarg_after_positional_only(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("bbox(crs='latlon', 0, 0, 1, 1)")

    def test_wrong_arity_messages(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("within(s)")
        with pytest.raises(QuerySyntaxError):
            parse_query("ndvi(a)")
        with pytest.raises(QuerySyntaxError):
            parse_query("bbox(1, 2, 3)")
