"""Resampling kernels: exactness, continuity, domain handling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OperatorError
from repro.raster import (
    KERNEL_FOOTPRINT,
    block_reduce,
    sample,
    sample_bicubic,
    sample_bilinear,
    sample_nearest,
)


@pytest.fixture()
def grid():
    return np.arange(48, dtype=np.float64).reshape(6, 8)


class TestNearest:
    def test_exact_at_centers(self, grid):
        rows = np.array([0.0, 2.0, 5.0])
        cols = np.array([0.0, 3.0, 7.0])
        out = sample_nearest(grid, rows, cols)
        np.testing.assert_array_equal(out, [grid[0, 0], grid[2, 3], grid[5, 7]])

    def test_rounds_to_nearest(self, grid):
        assert sample_nearest(grid, np.array([0.4]), np.array([0.4]))[0] == grid[0, 0]
        assert sample_nearest(grid, np.array([0.6]), np.array([0.6]))[0] == grid[1, 1]

    def test_outside_is_fill(self, grid):
        out = sample_nearest(grid, np.array([-1.0, 6.0]), np.array([0.0, 0.0]), fill=-9.0)
        np.testing.assert_array_equal(out, [-9.0, -9.0])

    def test_nan_coordinates_fill(self, grid):
        out = sample_nearest(grid, np.array([np.nan]), np.array([1.0]))
        assert np.isnan(out[0])


class TestBilinear:
    def test_exact_at_centers(self, grid):
        out = sample_bilinear(grid, np.array([2.0]), np.array([3.0]))
        assert out[0] == grid[2, 3]

    def test_midpoint_average(self, grid):
        out = sample_bilinear(grid, np.array([0.5]), np.array([0.5]))
        expected = (grid[0, 0] + grid[0, 1] + grid[1, 0] + grid[1, 1]) / 4
        assert out[0] == pytest.approx(expected)

    def test_linear_field_reproduced_exactly(self):
        """Bilinear interpolation is exact for affine fields."""
        r, c = np.meshgrid(np.arange(6.0), np.arange(8.0), indexing="ij")
        field = 3.0 * r - 2.0 * c + 1.0
        rng = np.random.default_rng(1)
        rows = rng.uniform(0, 5, 50)
        cols = rng.uniform(0, 7, 50)
        out = sample_bilinear(field, rows, cols)
        np.testing.assert_allclose(out, 3.0 * rows - 2.0 * cols + 1.0, atol=1e-9)

    def test_last_row_col_valid(self, grid):
        out = sample_bilinear(grid, np.array([5.0]), np.array([7.0]))
        assert out[0] == grid[5, 7]

    def test_outside_fill(self, grid):
        out = sample_bilinear(grid, np.array([5.01]), np.array([0.0]), fill=np.nan)
        assert np.isnan(out[0])


class TestBicubic:
    def test_exact_at_centers(self, grid):
        out = sample_bicubic(grid, np.array([2.0]), np.array([3.0]))
        assert out[0] == pytest.approx(grid[2, 3])

    def test_linear_field_reproduced(self):
        """Catmull-Rom reproduces linear fields exactly in the interior."""
        r, c = np.meshgrid(np.arange(8.0), np.arange(9.0), indexing="ij")
        field = 2.0 * r + 0.5 * c
        rng = np.random.default_rng(2)
        rows = rng.uniform(1.0, 6.0, 40)
        cols = rng.uniform(1.0, 7.0, 40)
        out = sample_bicubic(field, rows, cols)
        np.testing.assert_allclose(out, 2.0 * rows + 0.5 * cols, atol=1e-9)

    def test_quadratic_better_than_bilinear(self):
        r, c = np.meshgrid(np.arange(16.0), np.arange(16.0), indexing="ij")
        field = (r - 8.0) ** 2 + (c - 8.0) ** 2
        rows = np.full(25, 7.5) + np.linspace(-2, 2, 25)
        cols = np.full(25, 7.5)
        truth = (rows - 8.0) ** 2 + (cols - 8.0) ** 2
        err_cubic = np.abs(sample_bicubic(field, rows, cols) - truth).max()
        err_lin = np.abs(sample_bilinear(field, rows, cols) - truth).max()
        assert err_cubic < err_lin

    def test_near_edge_is_fill(self, grid):
        out = sample_bicubic(grid, np.array([0.5]), np.array([4.0]))
        assert np.isnan(out[0])  # needs a row above the first


class TestDispatch:
    def test_sample_by_name(self, grid):
        for name in KERNEL_FOOTPRINT:
            out = sample(name, grid, np.array([2.0]), np.array([3.0]))
            assert out[0] == pytest.approx(grid[2, 3])

    def test_unknown_method(self, grid):
        with pytest.raises(OperatorError):
            sample("lanczos", grid, np.array([0.0]), np.array([0.0]))

    def test_non_2d_rejected(self):
        with pytest.raises(OperatorError):
            sample_nearest(np.zeros(5), np.array([0.0]), np.array([0.0]))

    def test_footprints_ordered(self):
        assert KERNEL_FOOTPRINT["nearest"] < KERNEL_FOOTPRINT["bilinear"] < KERNEL_FOOTPRINT["bicubic"]


class TestBlockReduce:
    def test_mean_blocks(self):
        arr = np.arange(16.0).reshape(4, 4)
        out = block_reduce(arr, 2)
        expected = np.array([[2.5, 4.5], [10.5, 12.5]])
        np.testing.assert_allclose(out, expected)

    def test_truncates_remainder(self):
        arr = np.arange(30.0).reshape(5, 6)
        out = block_reduce(arr, 2)
        assert out.shape == (2, 3)

    def test_custom_reducer(self):
        arr = np.arange(16.0).reshape(4, 4)
        out = block_reduce(arr, 2, np.max)
        np.testing.assert_allclose(out, [[5.0, 7.0], [13.0, 15.0]])

    def test_k1_identity(self):
        arr = np.arange(6.0).reshape(2, 3)
        np.testing.assert_array_equal(block_reduce(arr, 1), arr)

    def test_too_small_rejected(self):
        with pytest.raises(OperatorError):
            block_reduce(np.zeros((2, 2)), 3)

    @given(k=st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_mean_preserves_total(self, k):
        rng = np.random.default_rng(0)
        arr = rng.uniform(size=(4 * k, 4 * k))
        out = block_reduce(arr, k)
        assert out.sum() * k * k == pytest.approx(arr.sum())
