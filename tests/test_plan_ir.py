"""The plan IR: canonicalization, fingerprints, and lowering parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TimeInterval, assemble_frames
from repro.engine.scheduler import merge_sources
from repro.errors import PlanError
from repro.geo import latlon
from repro.plan import (
    PlanDAG,
    SourceScan,
    build_composition,
    build_value_map,
    canonicalize,
    estimate_plan,
    nodes as p,
    plan_to_stream,
)
from repro.query import ast as q, plan_query
from repro.server import compile_push_network

from .conftest import sector_subbox


def _scan(sid: str = "s") -> q.QueryNode:
    return q.StreamRef(sid)


class TestCanonicalization:
    def test_commutative_compose_orders_children(self):
        ab = canonicalize(q.Compose(_scan("a"), _scan("b"), "+"))
        ba = canonicalize(q.Compose(_scan("b"), _scan("a"), "+"))
        assert ab == ba
        assert ab.fingerprint == ba.fingerprint

    def test_noncommutative_compose_keeps_order(self):
        ab = canonicalize(q.Compose(_scan("a"), _scan("b"), "-"))
        ba = canonicalize(q.Compose(_scan("b"), _scan("a"), "-"))
        assert ab != ba
        assert ab.fingerprint != ba.fingerprint

    def test_mosaic_not_reordered(self):
        # First-wins semantics: mosaic is order-sensitive.
        ab = canonicalize(q.Compose(_scan("a"), _scan("b"), "mosaic"))
        assert isinstance(ab.left, SourceScan) and ab.left.stream_id == "a"

    def test_value_map_defaults_normalized(self):
        bare = canonicalize(q.ValueMap(_scan(), "reflectance"))
        explicit = canonicalize(q.ValueMap(_scan(), "reflectance", (("bits", 10.0),)))
        assert bare == explicit
        assert bare.fingerprint == explicit.fingerprint

    def test_adjacent_value_restricts_fold(self):
        tree = q.ValueRestrict(q.ValueRestrict(_scan(), 0.0, 0.8), 0.2, None)
        plan = canonicalize(tree)
        assert isinstance(plan, p.ValueRestrict)
        assert plan.lo == 0.2 and plan.hi == 0.8
        assert isinstance(plan.child, SourceScan)

    def test_adjacent_temporal_restricts_fold(self):
        outer = TimeInterval(0.0, 100.0)
        inner = TimeInterval(50.0, 200.0)
        tree = q.TemporalRestrict(q.TemporalRestrict(_scan(), inner), outer)
        plan = canonicalize(tree)
        assert isinstance(plan, p.TemporalRestrict)
        assert isinstance(plan.child, SourceScan)
        lo, hi = plan.timeset.bounds()
        assert (lo, hi) == (50.0, 100.0)

    def test_adjacent_spatial_restricts_fold(self, small_imager):
        big = sector_subbox(small_imager, 0.0, 0.0, 0.8, 0.8)
        small = sector_subbox(small_imager, 0.2, 0.2, 0.6, 0.6)
        tree = q.SpatialRestrict(q.SpatialRestrict(_scan(), big), small)
        plan = canonicalize(tree)
        assert isinstance(plan, p.SpatialRestrict)
        assert isinstance(plan.child, SourceScan)

    def test_duplicate_spatial_restriction_dedupes(self, small_imager):
        box = sector_subbox(small_imager, 0.1, 0.1, 0.5, 0.5)
        tree = q.SpatialRestrict(q.SpatialRestrict(_scan(), box), box)
        plan = canonicalize(tree)
        assert plan == canonicalize(q.SpatialRestrict(_scan(), box))

    def test_region_resolved_to_source_crs(self, small_imager, geos_crs):
        ll = latlon()
        from repro.geo import BoundingBox

        region = BoundingBox(-124.0, 36.0, -120.0, 40.0, ll)
        tree = q.SpatialRestrict(q.StreamRef("goes.vis"), region)
        plan = canonicalize(tree, crs_of={"goes.vis": geos_crs})
        assert plan.region.crs == geos_crs
        # Without a CRS map the region is kept as written.
        plan_raw = canonicalize(tree)
        assert plan_raw.region.crs == ll

    def test_compose_policy_from_leftmost_source(self):
        plan = canonicalize(
            q.Compose(_scan("a"), _scan("b"), "ndvi"),
            policy_of={"a": "measured", "b": "sector"},
        )
        assert plan.timestamp_policy == "measured"

    def test_policy_in_fingerprint(self):
        tree = q.Compose(_scan("a"), _scan("b"), "ndvi")
        sector = canonicalize(tree, default_policy="sector")
        measured = canonicalize(tree, default_policy="measured")
        assert sector.fingerprint != measured.fingerprint

    def test_to_ast_round_trip(self, small_imager):
        box = sector_subbox(small_imager, 0.1, 0.1, 0.9, 0.9)
        tree = q.Stretch(
            q.ValueMap(q.SpatialRestrict(_scan(), box), "reflectance", (("bits", 10.0),)),
            "linear",
        )
        assert canonicalize(tree).to_ast() == tree

    def test_estimate_plan_matches_logical_estimate(self, catalog, small_imager):
        from repro.query.cost import estimate_query

        box = sector_subbox(small_imager, 0.2, 0.2, 0.7, 0.7)
        tree = q.ValueMap(q.SpatialRestrict(q.StreamRef("goes.vis"), box), "reflectance")
        plan = canonicalize(tree, crs_of=dict(catalog.crs_of()))
        est, _ = estimate_plan(plan, catalog.profiles())
        ref, _ = estimate_query(plan.to_ast(), catalog.profiles())
        assert est.points == ref.points and est.work == ref.work


class TestOperatorTable:
    def test_build_value_map_kinds(self):
        assert "2*v" in repr(build_value_map("rescale", {"gain": 2.0}))
        assert build_value_map("reflectance").name
        assert build_value_map("negate").name
        with pytest.raises(PlanError):
            build_value_map("no-such-kind")

    def test_build_composition_macros(self):
        assert build_composition("ndvi").name
        assert build_composition("evi2").name
        assert build_composition("+", "measured").name

    def test_every_node_type_lowers_to_an_operator(self, small_imager, geos_crs):
        box = sector_subbox(small_imager, 0.0, 0.0, 1.0, 1.0)
        cases = [
            q.SpatialRestrict(_scan(), box),
            q.TemporalRestrict(_scan(), TimeInterval(0.0, 1.0)),
            q.ValueRestrict(_scan(), 0.0, 1.0),
            q.ValueMap(_scan(), "rescale", (("gain", 2.0),)),
            q.Stretch(_scan(), "linear"),
            q.Magnify(_scan(), 2),
            q.Coarsen(_scan(), 2),
            q.Rotate(_scan(), 30.0),
            q.Reproject(_scan(), geos_crs),
            q.TemporalAgg(_scan(), "mean", 2, "sliding"),
            q.RegionAgg(_scan(), (("r", box),), "mean"),
        ]
        for tree in cases:
            plan = canonicalize(tree)
            assert plan.make_operator() is not None

    def test_leaves_have_no_operator(self):
        with pytest.raises(PlanError):
            SourceScan("s").make_operator()


class TestLoweringParity:
    def test_pull_and_push_agree_after_canonicalization(self, catalog, small_imager):
        """Both executors lower the same canonical plan to identical frames."""
        box = sector_subbox(small_imager, 0.2, 0.2, 0.8, 0.8)
        tree = q.ValueRestrict(
            q.ValueMap(q.SpatialRestrict(q.StreamRef("goes.vis"), box), "reflectance"),
            0.0,
            0.9,
        )
        sources = {sid: catalog.get(sid) for sid in catalog.ids()}
        pull_frames = plan_query(tree, sources).collect_frames()

        received = []
        network = compile_push_network(
            tree, received.append, source_crs=dict(catalog.crs_of())
        )
        for sid, chunk in merge_sources({"goes.vis": catalog.get("goes.vis")}):
            network.feed(sid, chunk)
        network.flush()
        push_frames = list(assemble_frames(received))
        assert len(push_frames) == len(pull_frames)
        for a, b in zip(push_frames, pull_frames):
            np.testing.assert_allclose(a.values, b.values, atol=1e-6, equal_nan=True)

    def test_plan_to_stream_uses_fresh_operators(self, catalog):
        tree = q.ValueMap(q.StreamRef("goes.vis"), "reflectance")
        plan = canonicalize(tree)
        resolve = catalog.get
        a = plan_to_stream(plan, resolve)
        b = plan_to_stream(plan, resolve)
        assert a.pipeline_operators[0] is not b.pipeline_operators[0]

    def test_planner_shim_removed(self):
        # The deprecated repro.query.planner.build_value_map shim is gone;
        # the one construction table lives in repro.plan.
        import repro.query.planner as planner

        assert not hasattr(planner, "build_value_map")
        assert planner.__all__ == ["plan_query"]


class TestPlanDAGUnit:
    def test_within_query_duplicate_subplans_share(self):
        # a + a: both Compose inputs are the same canonical subplan.
        tree = q.Compose(
            q.ValueMap(_scan("a"), "reflectance"),
            q.ValueMap(_scan("a"), "reflectance"),
            "+",
        )
        plan = canonicalize(tree)
        dag = PlanDAG()
        dag.add_plan(plan, lambda c: None, root_id=1)
        kinds = [type(s.node).__name__ for s in dag.order]
        assert kinds.count("ValueMap") == 1  # reused for both sides
        assert dag.stats.subplan_hits == 1

    def test_share_disabled_duplicates_stages(self):
        tree = q.ValueMap(_scan("a"), "reflectance")
        plan = canonicalize(tree)
        dag = PlanDAG(share=False)
        dag.add_plan(plan, lambda c: None, root_id=1)
        dag.add_plan(plan, lambda c: None, root_id=2)
        assert dag.stages_total == 2
        assert dag.stats.subplan_hits == 0

    def test_render_lists_stages_and_sources(self):
        plan = canonicalize(q.ValueMap(_scan("a"), "reflectance"))
        dag = PlanDAG()
        dag.add_plan(plan, lambda c: None, root_id=7)
        text = dag.render()
        assert "source a" in text
        assert "ValueMap(reflectance" in text
        assert "q7" in text
