"""DSMS server: protocol, push networks, routing, sessions (Fig. 3)."""

import numpy as np
import pytest

from repro.errors import PlanError, ProtocolError, ServerError
from repro.geo import BoundingBox
from repro.index import GridRegionIndex, NaiveRegionIndex
from repro.query import ast as q
from repro.server import (
    DSMSServer,
    StreamCatalog,
    compile_push_network,
    format_query_request,
    parse_request,
    source_prune_boxes,
)


def subbox(imager, fx0, fy0, fx1, fy1):
    box = imager.sector_lattice.bbox
    return BoundingBox(
        box.xmin + box.width * fx0,
        box.ymin + box.height * fy0,
        box.xmin + box.width * fx1,
        box.ymin + box.height * fy1,
        box.crs,
    )


def bbox_text(box):
    return f"bbox({box.xmin!r}, {box.ymin!r}, {box.xmax!r}, {box.ymax!r}, crs='geos:-135')"


class TestProtocol:
    def test_parse_query_request(self):
        req = parse_request("GET /query?q=goes.vis&format=png HTTP/1.1")
        assert req.kind == "register-query"
        assert req.params["q"] == "goes.vis"
        assert req.params["format"] == "png"

    def test_parse_streams_request(self):
        assert parse_request("GET /streams").kind == "list-streams"

    def test_parse_deregister(self):
        req = parse_request("DELETE /query/7 HTTP/1.1")
        assert req.kind == "deregister-query"
        assert req.session_id == 7

    def test_format_query_request_roundtrip(self):
        text = "within(goes.vis, bbox(0, 0, 1, 1, crs='latlon'))"
        line = format_query_request(text)
        req = parse_request(line)
        assert req.params["q"] == text

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request("GARBAGE")
        with pytest.raises(ProtocolError):
            parse_request("POST /query?q=x HTTP/1.1")
        with pytest.raises(ProtocolError):
            parse_request("GET /unknown HTTP/1.1").kind
        with pytest.raises(ProtocolError):
            parse_request("DELETE /query/abc").session_id


class TestPushNetwork:
    def test_equivalent_to_pull_plan(self, small_imager, catalog):
        """Push execution produces the same frames as pull execution."""
        from repro.core import assemble_frames
        from repro.query import plan_query

        region = subbox(small_imager, 0.2, 0.2, 0.8, 0.8)
        tree = q.SpatialRestrict(
            q.Compose(q.StreamRef("goes.nir"), q.StreamRef("goes.vis"), "ndvi"),
            region,
        )
        sources = {sid: catalog.get(sid) for sid in catalog.ids()}
        pull_frames = plan_query(tree, sources).collect_frames()

        received = []
        network = compile_push_network(tree, received.append)
        from repro.engine.scheduler import merge_sources

        for sid, chunk in merge_sources(sources):
            network.feed(sid, chunk)
        network.flush()
        push_frames = list(assemble_frames(received))
        assert len(push_frames) == len(pull_frames)
        for a, b in zip(push_frames, pull_frames):
            np.testing.assert_allclose(a.values, b.values, atol=1e-6, equal_nan=True)

    def test_feed_after_flush_rejected(self, small_imager, catalog):
        network = compile_push_network(q.StreamRef("goes.vis"), lambda c: None)
        network.flush()
        chunk = catalog.get("goes.vis").collect_chunks(limit=1)[0]
        with pytest.raises(PlanError):
            network.feed("goes.vis", chunk)

    def test_source_ids(self):
        tree = q.Compose(q.StreamRef("a"), q.StreamRef("b"), "+")
        network = compile_push_network(tree, lambda c: None)
        assert network.source_ids == ["a", "b"]


class TestSourcePruneBoxes:
    def test_restriction_above_source(self, small_imager):
        region = subbox(small_imager, 0.1, 0.1, 0.5, 0.5)
        tree = q.SpatialRestrict(q.StreamRef("goes.vis"), region)
        boxes = source_prune_boxes(tree)
        assert boxes["goes.vis"] == region

    def test_passes_through_geometry_preserving_ops(self, small_imager):
        region = subbox(small_imager, 0.1, 0.1, 0.5, 0.5)
        tree = q.SpatialRestrict(
            q.Stretch(q.ValueMap(q.StreamRef("goes.vis"), "negate"), "linear"),
            region,
        )
        boxes = source_prune_boxes(tree)
        assert boxes["goes.vis"] is not None

    def test_distributes_over_compose(self, small_imager):
        region = subbox(small_imager, 0.1, 0.1, 0.5, 0.5)
        tree = q.SpatialRestrict(
            q.Compose(q.StreamRef("goes.nir"), q.StreamRef("goes.vis"), "-"), region
        )
        boxes = source_prune_boxes(tree)
        assert boxes["goes.nir"] == region and boxes["goes.vis"] == region

    def test_resets_at_reproject(self, small_imager):
        from repro.geo import utm

        region = BoundingBox(0.0, 0.0, 1.0, 1.0, utm(10))
        tree = q.SpatialRestrict(q.Reproject(q.StreamRef("goes.vis"), utm(10)), region)
        boxes = source_prune_boxes(tree)
        assert boxes["goes.vis"] is None  # geometry changed; no claim

    def test_unrestricted_source(self):
        boxes = source_prune_boxes(q.StreamRef("goes.vis"))
        assert boxes == {"goes.vis": None}

    def test_stacked_restrictions_intersect(self, small_imager):
        r1 = subbox(small_imager, 0.0, 0.0, 0.6, 0.6)
        r2 = subbox(small_imager, 0.4, 0.4, 1.0, 1.0)
        tree = q.SpatialRestrict(q.SpatialRestrict(q.StreamRef("s"), r1), r2)
        boxes = source_prune_boxes(tree)
        inter = r1.intersection(r2)
        assert boxes["s"].xmin == pytest.approx(inter.xmin)


class TestCatalog:
    def test_register_and_lookup(self, small_imager):
        cat = StreamCatalog()
        cat.register_imager(small_imager)
        assert "goes.vis" in cat and "goes.nir" in cat
        assert len(cat) == 2
        assert cat.ids() == ["goes.nir", "goes.vis"]
        assert cat.extent("goes.vis") == small_imager.sector_lattice.bbox

    def test_duplicate_rejected(self, small_imager):
        cat = StreamCatalog()
        cat.register_imager(small_imager)
        with pytest.raises(ServerError):
            cat.register_imager(small_imager)

    def test_unknown_lookup(self):
        with pytest.raises(ServerError):
            StreamCatalog().get("nope")

    def test_profiles(self, catalog):
        profiles = catalog.profiles()
        assert profiles["goes.vis"].frame_points == 48 * 96


class TestDSMS:
    def test_register_run_deliver(self, small_imager, catalog):
        server = DSMSServer(catalog)
        region = subbox(small_imager, 0.2, 0.2, 0.7, 0.7)
        session = server.register(
            f"within(ndvi(reflectance(goes.nir), reflectance(goes.vis)), {bbox_text(region)})"
        )
        server.run()
        assert session.closed
        assert len(session.frames) == 2
        assert session.frames[0].png.startswith(b"\x89PNG")

    def test_multiple_queries_one_scan(self, small_imager, catalog):
        server = DSMSServer(catalog)
        s1 = server.register(
            f"within(reflectance(goes.vis), {bbox_text(subbox(small_imager, 0.0, 0.0, 0.3, 0.3))})"
        )
        s2 = server.register(
            f"within(reflectance(goes.vis), {bbox_text(subbox(small_imager, 0.6, 0.6, 0.9, 0.9))})"
        )
        s3 = server.register(
            f"ragg(reflectance(goes.nir), 'mean', 'all', {bbox_text(subbox(small_imager, 0.0, 0.0, 1.0, 1.0))})"
        )
        stats = server.run()
        assert len(s1.frames) == 2 and len(s2.frames) == 2
        assert len(s3.records) == 2
        # The two small disjoint regions prune most of their pairs (the
        # whole-sector aggregate necessarily receives everything).
        assert stats.pairs_skipped > 0
        assert stats.prune_fraction > 0.3

    def test_router_prunes_disjoint_queries(self, small_imager, catalog):
        server = DSMSServer(catalog)
        region = subbox(small_imager, 0.0, 0.0, 0.2, 0.2)
        session = server.register(f"within(reflectance(goes.vis), {bbox_text(region)})")
        stats = server.run()
        assert stats.prune_fraction > 0.5
        assert len(session.frames) == 2

    def test_pruning_does_not_change_results(self, small_imager, catalog):
        region = subbox(small_imager, 0.1, 0.3, 0.5, 0.6)
        text = f"within(reflectance(goes.vis), {bbox_text(region)})"
        with_router = DSMSServer(catalog)
        s_routed = with_router.register(text)
        with_router.run()
        # Same query, optimizer off and naive index: baseline result.
        baseline = DSMSServer(catalog, index_factory=NaiveRegionIndex, optimize_queries=False)
        s_base = baseline.register(text)
        baseline.run()
        assert len(s_routed.frames) == len(s_base.frames)
        for a, b in zip(s_routed.frames, s_base.frames):
            np.testing.assert_allclose(
                a.image.values, b.image.values, atol=1e-6, equal_nan=True
            )

    def test_handle_request_flow(self, small_imager, catalog):
        server = DSMSServer(catalog)
        listing = server.handle_request("GET /streams HTTP/1.1")
        assert listing == ["goes.nir", "goes.vis"]
        region = subbox(small_imager, 0.2, 0.2, 0.8, 0.8)
        text = f"within(reflectance(goes.vis), {bbox_text(region)})"
        session = server.handle_request(format_query_request(text))
        assert session.session_id >= 1
        server.handle_request(f"DELETE /query/{session.session_id} HTTP/1.1")
        assert session.closed

    def test_unknown_stream_rejected(self, catalog):
        server = DSMSServer(catalog)
        with pytest.raises(ServerError, match="unknown stream"):
            server.register("within(modis.b1, bbox(0,0,1,1))")

    def test_deregister_unknown(self, catalog):
        with pytest.raises(ServerError):
            DSMSServer(catalog).deregister(99)

    def test_optimizer_applied_at_registration(self, small_imager, catalog):
        server = DSMSServer(catalog)
        region = subbox(small_imager, 0.2, 0.2, 0.8, 0.8)
        session = server.register(
            f"within(reflectance(goes.vis), {bbox_text(region)})"
        )
        assert "push-spatial-valuemap" in session.applied_rules

    def test_grid_index_variant(self, small_imager, catalog):
        def factory():
            return GridRegionIndex(small_imager.sector_lattice.bbox, 8, 8)

        server = DSMSServer(catalog, index_factory=factory)
        region = subbox(small_imager, 0.2, 0.2, 0.5, 0.5)
        session = server.register(f"within(reflectance(goes.vis), {bbox_text(region)})")
        server.run()
        assert len(session.frames) == 2

    def test_ast_registration(self, small_imager, catalog):
        server = DSMSServer(catalog)
        region = subbox(small_imager, 0.2, 0.2, 0.8, 0.8)
        session = server.register(q.SpatialRestrict(q.StreamRef("goes.vis"), region))
        server.run()
        assert len(session.frames) == 2

    def test_max_chunks_limits_scan(self, small_imager, catalog):
        server = DSMSServer(catalog)
        session = server.register("reflectance(goes.vis)")
        server.run(max_chunks=10)
        assert session.chunks_received <= 10
