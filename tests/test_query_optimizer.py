"""Query rewriting (Section 3.4): pushdown rules and plan equivalence."""

import numpy as np
import pytest

from repro.core import TimeInterval
from repro.geo import BoundingBox, utm
from repro.query import ast as q, optimize, plan_query
from repro.query.optimizer import infer_crs


def subbox(imager, fx0, fy0, fx1, fy1):
    box = imager.sector_lattice.bbox
    return BoundingBox(
        box.xmin + box.width * fx0,
        box.ymin + box.height * fy0,
        box.xmin + box.width * fx1,
        box.ymin + box.height * fy1,
        box.crs,
    )


@pytest.fixture()
def crs_of(catalog):
    return dict(catalog.crs_of())


class TestRules:
    def test_push_through_valuemap(self, small_imager, crs_of):
        region = subbox(small_imager, 0.2, 0.2, 0.8, 0.8)
        tree = q.SpatialRestrict(
            q.ValueMap(q.StreamRef("goes.vis"), "reflectance", (("bits", 10.0),)),
            region,
        )
        result = optimize(tree, crs_of)
        assert "push-spatial-valuemap" in result.applied
        assert isinstance(result.node, q.ValueMap)
        assert isinstance(result.node.child, q.SpatialRestrict)

    def test_push_through_compose(self, small_imager, crs_of):
        region = subbox(small_imager, 0.2, 0.2, 0.8, 0.8)
        tree = q.SpatialRestrict(
            q.Compose(q.StreamRef("goes.nir"), q.StreamRef("goes.vis"), "ndvi"),
            region,
        )
        result = optimize(tree, crs_of)
        assert "push-spatial-compose" in result.applied
        assert isinstance(result.node, q.Compose)
        assert isinstance(result.node.left, q.SpatialRestrict)
        assert isinstance(result.node.right, q.SpatialRestrict)

    def test_push_through_reproject_maps_region(self, small_imager, crs_of):
        """The paper's example: R in UTM must be mapped to the source CRS C."""
        utm10 = utm(10)
        x0, y0 = (float(v) for v in utm10.from_lonlat(-122.0, 38.0))
        x1, y1 = (float(v) for v in utm10.from_lonlat(-120.0, 40.0))
        region = BoundingBox(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1), utm10)
        tree = q.SpatialRestrict(q.Reproject(q.StreamRef("goes.vis"), utm10), region)
        result = optimize(tree, crs_of)
        assert "push-spatial-reproject" in result.applied
        # Exact restriction kept on top; pruning box below, in the source CRS.
        assert isinstance(result.node, q.SpatialRestrict)
        inner = result.node.child
        assert isinstance(inner, q.Reproject)
        pruning = inner.child
        assert isinstance(pruning, q.SpatialRestrict)
        assert pruning.region.crs == crs_of["goes.vis"]
        # The pruning box covers the region's image in the source CRS.
        geos = crs_of["goes.vis"]
        gx, gy = geos.from_lonlat(-121.0, 39.0)  # region-interior point
        assert pruning.region.bounding_box.contains_point(float(gx), float(gy))

    def test_push_reproject_idempotent(self, small_imager, crs_of):
        utm10 = utm(10)
        region = subbox(small_imager, 0.2, 0.2, 0.8, 0.8).transformed(utm10)
        tree = q.SpatialRestrict(q.Reproject(q.StreamRef("goes.vis"), utm10), region)
        once = optimize(tree, crs_of)
        twice = optimize(once.node, crs_of)
        assert twice.node == once.node

    def test_merge_spatial(self, small_imager, crs_of):
        r1 = subbox(small_imager, 0.0, 0.0, 0.6, 0.6)
        r2 = subbox(small_imager, 0.4, 0.4, 1.0, 1.0)
        tree = q.SpatialRestrict(q.SpatialRestrict(q.StreamRef("goes.vis"), r1), r2)
        result = optimize(tree, crs_of)
        assert "merge-spatial" in result.applied
        assert isinstance(result.node, q.SpatialRestrict)
        assert isinstance(result.node.child, q.StreamRef)
        merged = result.node.region
        expected = r1.intersection(r2)
        assert merged.bounding_box.xmin == pytest.approx(expected.xmin)
        assert merged.bounding_box.ymax == pytest.approx(expected.ymax)

    def test_merge_temporal(self, crs_of):
        tree = q.TemporalRestrict(
            q.TemporalRestrict(q.StreamRef("goes.vis"), TimeInterval(0.0, 100.0)),
            TimeInterval(50.0, 200.0),
        )
        result = optimize(tree, crs_of)
        assert "merge-temporal" in result.applied
        assert isinstance(result.node.child, q.StreamRef)
        assert result.node.timeset == TimeInterval(50.0, 100.0)

    def test_push_temporal_through_unary_and_compose(self, crs_of):
        tree = q.TemporalRestrict(
            q.Stretch(
                q.Compose(q.StreamRef("goes.nir"), q.StreamRef("goes.vis"), "-"),
                "linear",
            ),
            TimeInterval(0.0, 100.0),
        )
        result = optimize(tree, crs_of)
        assert "push-temporal-unary" in result.applied
        assert "push-temporal-compose" in result.applied
        assert isinstance(result.node, q.Stretch)
        assert isinstance(result.node.child, q.Compose)
        assert isinstance(result.node.child.left, q.TemporalRestrict)

    def test_temporal_before_spatial(self, small_imager, crs_of):
        region = subbox(small_imager, 0.2, 0.2, 0.8, 0.8)
        tree = q.TemporalRestrict(
            q.SpatialRestrict(q.StreamRef("goes.vis"), region),
            TimeInterval(0.0, 100.0),
        )
        result = optimize(tree, crs_of)
        assert "temporal-first" in result.applied
        assert isinstance(result.node, q.SpatialRestrict)
        assert isinstance(result.node.child, q.TemporalRestrict)

    def test_drop_identity(self, crs_of):
        tree = q.Magnify(q.Coarsen(q.Rotate(q.StreamRef("s"), 0.0), 1), 1)
        result = optimize(tree, crs_of)
        assert result.node == q.StreamRef("s")
        assert result.applied.count("drop-identity") == 3

    def test_stretch_pushdown_gated_by_allow_inexact(self, small_imager, crs_of):
        region = subbox(small_imager, 0.2, 0.2, 0.8, 0.8)
        tree = q.SpatialRestrict(q.Stretch(q.StreamRef("goes.vis"), "linear"), region)
        strict = optimize(tree, crs_of, allow_inexact=False)
        assert "push-spatial-stretch" not in strict.applied
        assert isinstance(strict.node, q.SpatialRestrict)
        loose = optimize(tree, crs_of, allow_inexact=True)
        assert "push-spatial-stretch" in loose.applied

    def test_no_rules_is_stable(self, crs_of):
        tree = q.StreamRef("goes.vis")
        result = optimize(tree, crs_of)
        assert result.node == tree
        assert result.applied == []

    def test_infer_crs(self, crs_of):
        assert infer_crs(q.StreamRef("goes.vis"), crs_of) == crs_of["goes.vis"]
        assert infer_crs(q.Reproject(q.StreamRef("goes.vis"), utm(10)), crs_of) == utm(10)
        assert (
            infer_crs(q.Stretch(q.StreamRef("goes.vis"), "linear"), crs_of)
            == crs_of["goes.vis"]
        )
        assert infer_crs(q.StreamRef("unknown"), crs_of) is None

    def test_explain_mentions_rules(self, small_imager, crs_of):
        region = subbox(small_imager, 0.2, 0.2, 0.8, 0.8)
        tree = q.SpatialRestrict(
            q.ValueMap(q.StreamRef("goes.vis"), "negate"), region
        )
        text = optimize(tree, crs_of).explain()
        assert "push-spatial-valuemap" in text


class TestPlanEquivalence:
    """Rewritten plans must produce the same data (exact rules only)."""

    def assert_streams_equal(self, a, b):
        fa = a.collect_frames()
        fb = b.collect_frames()
        assert len(fa) == len(fb)
        for x, y in zip(fa, fb):
            assert x.lattice == y.lattice
            np.testing.assert_allclose(x.values, y.values, atol=1e-5, equal_nan=True)

    def test_pushdown_through_valuemap_equivalent(self, small_imager, catalog, crs_of):
        region = subbox(small_imager, 0.1, 0.2, 0.7, 0.9)
        tree = q.SpatialRestrict(
            q.ValueMap(q.StreamRef("goes.vis"), "reflectance", (("bits", 10.0),)),
            region,
        )
        optimized = optimize(tree, crs_of).node
        assert optimized != tree
        sources = {sid: catalog.get(sid) for sid in catalog.ids()}
        self.assert_streams_equal(plan_query(tree, sources), plan_query(optimized, sources))

    def test_pushdown_through_compose_equivalent(self, small_imager, catalog, crs_of):
        region = subbox(small_imager, 0.25, 0.25, 0.75, 0.75)
        tree = q.SpatialRestrict(
            q.Compose(
                q.ValueMap(q.StreamRef("goes.nir"), "reflectance", (("bits", 10.0),)),
                q.ValueMap(q.StreamRef("goes.vis"), "reflectance", (("bits", 10.0),)),
                "ndvi",
            ),
            region,
        )
        optimized = optimize(tree, crs_of).node
        sources = {sid: catalog.get(sid) for sid in catalog.ids()}
        self.assert_streams_equal(plan_query(tree, sources), plan_query(optimized, sources))

    def test_temporal_pushdown_equivalent(self, small_imager, catalog, crs_of):
        t0 = small_imager.t0
        tree = q.TemporalRestrict(
            q.Compose(q.StreamRef("goes.nir"), q.StreamRef("goes.vis"), "-"),
            TimeInterval(t0, t0 + small_imager.frame_period * 10),
        )
        optimized = optimize(tree, crs_of).node
        sources = {sid: catalog.get(sid) for sid in catalog.ids()}
        self.assert_streams_equal(plan_query(tree, sources), plan_query(optimized, sources))

    def test_merged_restrictions_equivalent(self, small_imager, catalog, crs_of):
        r1 = subbox(small_imager, 0.0, 0.0, 0.7, 0.7)
        r2 = subbox(small_imager, 0.3, 0.3, 1.0, 1.0)
        tree = q.SpatialRestrict(q.SpatialRestrict(q.StreamRef("goes.vis"), r1), r2)
        optimized = optimize(tree, crs_of).node
        sources = {sid: catalog.get(sid) for sid in catalog.ids()}
        self.assert_streams_equal(plan_query(tree, sources), plan_query(optimized, sources))


class TestMagnifyPushdownInexactness:
    """Regression for a hypothesis-found boundary case: a coarse pixel
    centered just outside R owns fine sub-pixels inside R, so restricting
    before magnification loses points. The rule is therefore gated behind
    ``allow_inexact`` (like the stretch pushdown)."""

    def boundary_tree(self, small_imager):
        lattice = small_imager.sector_lattice
        # Region starting half a coarse pixel left of a pixel center: the
        # neighbouring coarse pixel's center is outside, but after x2
        # magnification one of its fine columns falls inside.
        x_center = float(lattice.x_of_col(10))
        region = BoundingBox(
            x_center - abs(lattice.dx) * 0.45,
            lattice.bbox.ymin,
            lattice.bbox.xmax,
            lattice.bbox.ymax,
            lattice.crs,
        )
        return q.SpatialRestrict(q.Magnify(q.StreamRef("goes.vis"), 2), region)

    def test_exact_mode_does_not_push(self, small_imager, catalog, crs_of):
        tree = self.boundary_tree(small_imager)
        result = optimize(tree, crs_of, allow_inexact=False)
        assert "push-spatial-magnify" not in result.applied
        sources = {sid: catalog.get(sid) for sid in catalog.ids()}
        a = plan_query(tree, sources).count_points()
        b = plan_query(result.node, sources).count_points()
        assert a == b

    def test_inexact_mode_pushes_and_may_trim_boundary(self, small_imager, catalog, crs_of):
        tree = self.boundary_tree(small_imager)
        result = optimize(tree, crs_of, allow_inexact=True)
        assert "push-spatial-magnify" in result.applied
        sources = {sid: catalog.get(sid) for sid in catalog.ids()}
        a = plan_query(tree, sources).count_points()
        b = plan_query(result.node, sources).count_points()
        # At most one boundary fine-column per row may be trimmed.
        assert b <= a
        assert a - b <= small_imager.sector_lattice.height * 2 * 2
