"""Shared execution of identical registered queries (intro's duplication)."""

import numpy as np
import pytest

from repro.server import DSMSServer


def bbox_text(imager, fx0, fy0, fx1, fy1):
    box = imager.sector_lattice.bbox
    return (
        f"bbox({box.xmin + box.width * fx0!r}, {box.ymin + box.height * fy0!r}, "
        f"{box.xmin + box.width * fx1!r}, {box.ymin + box.height * fy1!r}, "
        f"crs='geos:-135')"
    )


@pytest.fixture()
def ndvi_query(small_imager):
    return (
        "within(ndvi(reflectance(goes.nir), reflectance(goes.vis)), "
        f"{bbox_text(small_imager, 0.2, 0.2, 0.7, 0.7)})"
    )


class TestQuerySharing:
    def test_identical_queries_share_one_network(self, catalog, ndvi_query):
        server = DSMSServer(catalog)
        s1 = server.register(ndvi_query)
        s2 = server.register(ndvi_query)
        assert server.shared_network_count == 1
        assert len(server.active_sessions()) == 2
        server.run()
        assert len(s1.frames) == len(s2.frames) == 2
        np.testing.assert_array_equal(
            s1.frames[0].image.values, s2.frames[0].image.values
        )

    def test_sharing_does_not_double_routing_work(self, catalog, ndvi_query):
        shared_server = DSMSServer(catalog)
        shared_server.register(ndvi_query)
        shared_server.register(ndvi_query)
        shared_stats = shared_server.run()

        # The same two queries with a tiny textual difference (distinct
        # regions) cannot share and are fed separately.
        solo_server = DSMSServer(catalog)
        solo_server.register(ndvi_query)
        solo_stats = solo_server.run()
        assert shared_stats.pairs_routed == solo_stats.pairs_routed

    def test_different_queries_not_shared(self, catalog, small_imager):
        server = DSMSServer(catalog)
        server.register(
            f"within(reflectance(goes.vis), {bbox_text(small_imager, 0.1, 0.1, 0.4, 0.4)})"
        )
        server.register(
            f"within(reflectance(goes.vis), {bbox_text(small_imager, 0.5, 0.5, 0.9, 0.9)})"
        )
        assert server.shared_network_count == 2

    def test_sharing_detected_after_optimization(self, catalog, small_imager):
        """Two syntactically different queries with equal optimized form share."""
        region = bbox_text(small_imager, 0.2, 0.2, 0.7, 0.7)
        direct = f"within(reflectance(goes.vis), {region})"
        # Same semantics, written with the restriction outside an extra
        # identity zoom that the optimizer removes.
        indirect = f"within(magnify(reflectance(goes.vis), 1), {region})"
        server = DSMSServer(catalog)
        server.register(direct)
        server.register(indirect)
        assert server.shared_network_count == 1

    def test_deregistering_one_subscriber_keeps_network(self, catalog, ndvi_query):
        server = DSMSServer(catalog)
        s1 = server.register(ndvi_query)
        s2 = server.register(ndvi_query)
        server.deregister(s1.session_id)
        assert server.shared_network_count == 1
        server.run()
        assert s2.frames and s1.frames == []

    def test_deregistering_last_subscriber_removes_network(self, catalog, ndvi_query):
        server = DSMSServer(catalog)
        s1 = server.register(ndvi_query)
        s2 = server.register(ndvi_query)
        server.deregister(s1.session_id)
        server.deregister(s2.session_id)
        assert server.shared_network_count == 0
        assert server.active_sessions() == []

    def test_mixed_shared_and_solo(self, catalog, small_imager, ndvi_query):
        server = DSMSServer(catalog)
        s1 = server.register(ndvi_query)
        s2 = server.register(ndvi_query)
        s3 = server.register(
            f"within(reflectance(goes.vis), {bbox_text(small_imager, 0.5, 0.5, 0.9, 0.9)})"
        )
        assert server.shared_network_count == 2
        server.run()
        assert len(s1.frames) == len(s2.frames) == 2
        assert len(s3.frames) == 2


PREFIX_QUERY = "vrange(reflectance(goes.vis), 0.1, 0.8)"


class TestRestoreUnderSharedPlan:
    """``restore_session`` when the replacement joins a live shared DAG.

    A reconnecting client's query may be textually identical to a
    still-registered one (full network share) or merely overlap it
    (shared prefix stages). In both cases the restore must graft onto the
    live stages — no refcount drift — and the combined delivery (frames
    before the drop plus frames after the restore) must be bit-identical
    to an uninterrupted run, each frame exactly once.
    """

    def register_all(self, server, ndvi_query):
        sessions = [
            server.register(ndvi_query, encode_png=False),
            server.register(ndvi_query, encode_png=False),
            server.register(PREFIX_QUERY, encode_png=False),
        ]
        assert server.shared_network_count == 2
        return sessions

    def test_restore_joins_the_shared_network_exactly(self, catalog, ndvi_query):
        baseline = DSMSServer(catalog)
        b1, _, _ = self.register_all(baseline, ndvi_query)
        baseline.run()
        assert len(b1.frames) == 2
        by_t = {f.image.t: f.image.values for f in b1.frames}

        first = DSMSServer(catalog)
        f1, _, _ = self.register_all(first, ndvi_query)
        first.run(max_chunks=100, close=False)  # one frame period and change
        assert len(f1.frames) == 1
        checkpoint = f1.checkpoint()

        second = DSMSServer(catalog)
        second.register(ndvi_query, encode_png=False)
        second.register(PREFIX_QUERY, encode_png=False)
        refcounts_before = {
            id(stage): set(stage.subscribers) for stage in second.plan_dag.order
        }
        restored = second.restore_session(checkpoint)
        # The replacement joined the live networks: same stage set, same
        # subscriber refcounts — no drift from the restore.
        assert second.shared_network_count == 2
        assert {
            id(stage): set(stage.subscribers) for stage in second.plan_dag.order
        } == refcounts_before
        second.run()

        combined = list(f1.frames) + list(restored.frames)
        times = [f.image.t for f in combined]
        assert len(times) == len(set(times)) == 2  # exactly once each
        for frame in combined:
            np.testing.assert_array_equal(frame.image.values, by_t[frame.image.t])

    def test_restored_overlapping_query_reuses_the_live_prefix(self, catalog):
        # Two distinct vrange queries over the same reflectance: they
        # share the prefix stage but not the whole network, so the
        # restore exercises the graft-onto-partial-overlap path.
        other = "vrange(reflectance(goes.vis), 0.0, 0.6)"

        baseline = DSMSServer(catalog)
        bp = baseline.register(PREFIX_QUERY, encode_png=False)
        baseline.register(other, encode_png=False)
        baseline.run()
        by_t = {f.image.t: f.image.values for f in bp.frames}

        first = DSMSServer(catalog)
        fp = first.register(PREFIX_QUERY, encode_png=False)
        first.register(other, encode_png=False)
        first.run(max_chunks=60, close=False)  # past the 48-chunk frame 1
        assert len(fp.frames) == 1
        checkpoint = fp.checkpoint()

        second = DSMSServer(catalog)
        s_other = second.register(other, encode_png=False)
        restored = second.restore_session(checkpoint)
        shared = [s for s in second.plan_dag.order if len(s.subscribers) > 1]
        assert shared, "the reflectance prefix must be shared after restore"
        second.run()

        combined = list(fp.frames) + list(restored.frames)
        times = [f.image.t for f in combined]
        assert len(times) == len(set(times)) == 2
        for frame in combined:
            np.testing.assert_array_equal(frame.image.values, by_t[frame.image.t])
        assert len(s_other.frames) == 2  # the overlapping query is untouched
