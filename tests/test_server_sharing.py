"""Shared execution of identical registered queries (intro's duplication)."""

import numpy as np
import pytest

from repro.server import DSMSServer


def bbox_text(imager, fx0, fy0, fx1, fy1):
    box = imager.sector_lattice.bbox
    return (
        f"bbox({box.xmin + box.width * fx0!r}, {box.ymin + box.height * fy0!r}, "
        f"{box.xmin + box.width * fx1!r}, {box.ymin + box.height * fy1!r}, "
        f"crs='geos:-135')"
    )


@pytest.fixture()
def ndvi_query(small_imager):
    return (
        "within(ndvi(reflectance(goes.nir), reflectance(goes.vis)), "
        f"{bbox_text(small_imager, 0.2, 0.2, 0.7, 0.7)})"
    )


class TestQuerySharing:
    def test_identical_queries_share_one_network(self, catalog, ndvi_query):
        server = DSMSServer(catalog)
        s1 = server.register(ndvi_query)
        s2 = server.register(ndvi_query)
        assert server.shared_network_count == 1
        assert len(server.active_sessions()) == 2
        server.run()
        assert len(s1.frames) == len(s2.frames) == 2
        np.testing.assert_array_equal(
            s1.frames[0].image.values, s2.frames[0].image.values
        )

    def test_sharing_does_not_double_routing_work(self, catalog, ndvi_query):
        shared_server = DSMSServer(catalog)
        shared_server.register(ndvi_query)
        shared_server.register(ndvi_query)
        shared_stats = shared_server.run()

        # The same two queries with a tiny textual difference (distinct
        # regions) cannot share and are fed separately.
        solo_server = DSMSServer(catalog)
        solo_server.register(ndvi_query)
        solo_stats = solo_server.run()
        assert shared_stats.pairs_routed == solo_stats.pairs_routed

    def test_different_queries_not_shared(self, catalog, small_imager):
        server = DSMSServer(catalog)
        server.register(
            f"within(reflectance(goes.vis), {bbox_text(small_imager, 0.1, 0.1, 0.4, 0.4)})"
        )
        server.register(
            f"within(reflectance(goes.vis), {bbox_text(small_imager, 0.5, 0.5, 0.9, 0.9)})"
        )
        assert server.shared_network_count == 2

    def test_sharing_detected_after_optimization(self, catalog, small_imager):
        """Two syntactically different queries with equal optimized form share."""
        region = bbox_text(small_imager, 0.2, 0.2, 0.7, 0.7)
        direct = f"within(reflectance(goes.vis), {region})"
        # Same semantics, written with the restriction outside an extra
        # identity zoom that the optimizer removes.
        indirect = f"within(magnify(reflectance(goes.vis), 1), {region})"
        server = DSMSServer(catalog)
        server.register(direct)
        server.register(indirect)
        assert server.shared_network_count == 1

    def test_deregistering_one_subscriber_keeps_network(self, catalog, ndvi_query):
        server = DSMSServer(catalog)
        s1 = server.register(ndvi_query)
        s2 = server.register(ndvi_query)
        server.deregister(s1.session_id)
        assert server.shared_network_count == 1
        server.run()
        assert s2.frames and s1.frames == []

    def test_deregistering_last_subscriber_removes_network(self, catalog, ndvi_query):
        server = DSMSServer(catalog)
        s1 = server.register(ndvi_query)
        s2 = server.register(ndvi_query)
        server.deregister(s1.session_id)
        server.deregister(s2.session_id)
        assert server.shared_network_count == 0
        assert server.active_sessions() == []

    def test_mixed_shared_and_solo(self, catalog, small_imager, ndvi_query):
        server = DSMSServer(catalog)
        s1 = server.register(ndvi_query)
        s2 = server.register(ndvi_query)
        s3 = server.register(
            f"within(reflectance(goes.vis), {bbox_text(small_imager, 0.5, 0.5, 0.9, 0.9)})"
        )
        assert server.shared_network_count == 2
        server.run()
        assert len(s1.frames) == len(s2.frames) == 2
        assert len(s3.frames) == 2
