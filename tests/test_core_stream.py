"""GeoStream semantics: re-openability, metadata, closure via pipe."""

import numpy as np
import pytest

from repro.core import (
    FLOAT32,
    GeoStream,
    GridChunk,
    GridLattice,
    Organization,
    StreamMetadata,
)
from repro.errors import StreamError
from repro.geo import LATLON
from repro.operators import Rescale


@pytest.fixture()
def metadata():
    return StreamMetadata(
        stream_id="test.stream",
        band="vis",
        crs=LATLON,
        organization=Organization.ROW_BY_ROW,
        value_set=FLOAT32,
    )


@pytest.fixture()
def chunks():
    lattice = GridLattice(LATLON, 0.0, 10.0, 1.0, -1.0, 4, 1)
    return [
        GridChunk(
            values=np.full((1, 4), i, dtype=np.float32),
            lattice=lattice,
            band="vis",
            t=float(i),
        )
        for i in range(3)
    ]


class TestGeoStream:
    def test_source_must_be_callable(self, metadata):
        with pytest.raises(StreamError):
            GeoStream(metadata, iter([]))  # an iterator, not a factory

    def test_reopenable(self, metadata, chunks):
        stream = GeoStream.from_chunks(metadata, chunks)
        first = list(stream.chunks())
        second = list(stream.chunks())
        assert len(first) == len(second) == 3
        np.testing.assert_array_equal(first[0].values, second[0].values)

    def test_accessors(self, metadata, chunks):
        stream = GeoStream.from_chunks(metadata, chunks)
        assert stream.stream_id == "test.stream"
        assert stream.band == "vis"
        assert stream.crs == LATLON
        assert stream.organization is Organization.ROW_BY_ROW
        assert stream.value_set is FLOAT32

    def test_count_points(self, metadata, chunks):
        stream = GeoStream.from_chunks(metadata, chunks)
        assert stream.count_points() == 12

    def test_collect_chunks_limit(self, metadata, chunks):
        stream = GeoStream.from_chunks(metadata, chunks)
        assert len(stream.collect_chunks(limit=2)) == 2

    def test_with_metadata(self, metadata, chunks):
        stream = GeoStream.from_chunks(metadata, chunks)
        renamed = stream.with_metadata(stream_id="other")
        assert renamed.stream_id == "other"
        assert renamed.band == "vis"
        # Shares the source.
        assert renamed.count_points() == 12

    def test_from_chunks_validates(self, metadata):
        with pytest.raises(StreamError):
            GeoStream.from_chunks(metadata, ["not a chunk"])

    def test_pipe_returns_geostream_closure(self, metadata, chunks):
        """The algebra is closed: piping yields a stream that pipes again."""
        stream = GeoStream.from_chunks(metadata, chunks)
        doubled = stream.pipe(Rescale(2.0))
        assert isinstance(doubled, GeoStream)
        quadrupled = doubled.pipe(Rescale(2.0))
        out = quadrupled.collect_chunks()
        np.testing.assert_allclose(out[1].values, chunks[1].values * 4)

    def test_pipe_reopen_resets_operators(self, metadata, chunks):
        stream = GeoStream.from_chunks(metadata, chunks)
        op = Rescale(2.0)
        piped = stream.pipe(op)
        assert piped.count_points() == 12
        assert op.stats.points_in == 12
        # Second iteration starts from fresh stats, not 24.
        assert piped.count_points() == 12
        assert op.stats.points_in == 12

    def test_repr(self, metadata, chunks):
        stream = GeoStream.from_chunks(metadata, chunks)
        text = repr(stream)
        assert "test.stream" in text and "row-by-row" in text
