"""Delivery (Section 4) and macro operators (NDVI and friends)."""

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.ingest import GOESImager, LidarScanner, western_us_sector
from repro.operators import (
    CollectingSink,
    Delivery,
    band_difference,
    band_ratio,
    evi2,
    ndvi,
    reflectance,
)
from repro.raster import decode_png

DAY_T0 = 72_000.0


def make_imager(scene, geos_crs, shape=(12, 24), n_frames=2):
    sector = western_us_sector(geos_crs, width=shape[1], height=shape[0])
    return GOESImager(scene=scene, sector_lattice=sector, n_frames=n_frames, t0=DAY_T0)


class TestDelivery:
    def test_png_per_frame(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs)
        sink = CollectingSink()
        op = Delivery(sink)
        out = imager.stream("vis").pipe(op)
        chunks = out.collect_chunks()
        assert len(sink) == 2
        for frame in sink.frames:
            assert frame.png.startswith(b"\x89PNG")
            decoded = decode_png(frame.png)
            assert decoded.shape == (12, 24)
        # Delivery is a pass-through: chunks keep flowing downstream.
        assert len(chunks) == 2 * 12

    def test_encode_false_skips_png(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs)
        op = Delivery(encode=False)
        imager.stream("vis").pipe(op).count_points()
        assert all(f.png == b"" for f in op.sink.frames)

    def test_georeferencing_attached(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs)
        op = Delivery()
        imager.stream("vis").pipe(op).count_points()
        image = op.sink.frames[0].image
        assert image.lattice == imager.sector_lattice
        assert image.sector == 0

    def test_custom_sink_callable(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, n_frames=1)
        received = []
        op = Delivery(sink=received.append)
        imager.stream("vis").pipe(op).count_points()
        assert len(received) == 1

    def test_point_stream_rejected(self, scene):
        lidar = LidarScanner(scene=scene, n_points=50, points_per_chunk=50)
        with pytest.raises(OperatorError):
            lidar.stream().pipe(Delivery()).collect_chunks()

    def test_partial_frame_flushed(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, n_frames=1)
        op = Delivery()
        # Take only the first half of the frame's rows, then flush.
        chunks = imager.stream("vis").collect_chunks()[:6]
        for c in chunks:
            list(op.process(c))
        list(op.flush())
        assert len(op.sink) == 1

    def test_float_products_deliverable(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, n_frames=1)
        product = ndvi(
            reflectance(imager.stream("nir")), reflectance(imager.stream("vis"))
        )
        op = Delivery()
        product.pipe(op).count_points()
        assert decode_png(op.sink.frames[0].png).dtype == np.uint8


class TestMacros:
    def test_ndvi_definition(self, scene, geos_crs):
        """ndvi() equals the algebra expression (G1-G2)/(G1+G2)."""
        imager = make_imager(scene, geos_crs)
        nir_r = reflectance(imager.stream("nir"))
        vis_r = reflectance(imager.stream("vis"))
        macro = ndvi(nir_r, vis_r).collect_frames()
        n = nir_r.collect_frames()
        v = vis_r.collect_frames()
        manual = (n[0].values - v[0].values) / (n[0].values + v[0].values)
        np.testing.assert_allclose(macro[0].values, manual.astype(np.float32), atol=1e-6)
        assert macro[0].band == "ndvi"

    def test_ndvi_range_clamped(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs)
        out = ndvi(
            reflectance(imager.stream("nir")), reflectance(imager.stream("vis"))
        ).collect_frames()[0]
        finite = out.values[np.isfinite(out.values)]
        assert finite.min() >= -1.0 and finite.max() <= 1.0

    def test_ndvi_higher_over_vegetation_than_water(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs, shape=(24, 48))
        out = ndvi(
            reflectance(imager.stream("nir")), reflectance(imager.stream("vis"))
        ).collect_frames()[0]
        lon, lat = imager.lonlat_grid(out.lattice)
        water = scene.water_mask(lon, lat)
        clear = scene.cloud_cover(lon, lat, DAY_T0) < 0.1
        land_vals = out.values[~water & clear & np.isfinite(out.values)]
        water_vals = out.values[water & clear & np.isfinite(out.values)]
        if land_vals.size > 5 and water_vals.size > 5:
            assert land_vals.mean() > water_vals.mean() + 0.2

    def test_evi2_bounded(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs)
        out = evi2(
            reflectance(imager.stream("nir")), reflectance(imager.stream("vis"))
        ).collect_frames()[0]
        finite = out.values[np.isfinite(out.values)]
        assert np.abs(finite).max() <= 2.5
        assert out.band == "evi2"

    def test_band_ratio(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs)
        nir_r = reflectance(imager.stream("nir"))
        vis_r = reflectance(imager.stream("vis"))
        out = band_ratio(nir_r, vis_r).collect_frames()[0]
        n = nir_r.collect_frames()[0].values
        v = vis_r.collect_frames()[0].values
        with np.errstate(divide="ignore", invalid="ignore"):
            expected = n / v
        good = np.isfinite(expected)
        np.testing.assert_allclose(out.values[good], expected[good], rtol=1e-5)

    def test_reflectance_calibration(self, scene, geos_crs):
        imager = make_imager(scene, geos_crs)
        counts = imager.stream("vis").collect_frames()[0]
        refl = reflectance(imager.stream("vis")).collect_frames()[0]
        np.testing.assert_allclose(
            refl.values, counts.values.astype(np.float32) / 1023.0, atol=1e-6
        )
