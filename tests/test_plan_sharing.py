"""Subplan-level sharing across *different* registered queries.

The acceptance bar for the shared plan DAG: two different queries with a
common canonical prefix execute the shared stages exactly once per chunk,
produce bit-identical frames versus unshared execution, and tear down by
refcount when one of them deregisters.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.plan import SourceScan, ValueMap
from repro.server import DSMSServer

# Two different continuous queries sharing the reflectance(goes.vis)
# prefix; the value ranges differ, so the plans differ above the prefix.
Q1 = "vrange(reflectance(goes.vis), 0.0, 0.6)"
Q2 = "vrange(reflectance(goes.vis), 0.2, 0.9)"


def _frames(session):
    return [f.image.values for f in session.frames]


class TestSubplanSharing:
    def test_shared_prefix_executes_once_per_chunk(self, catalog):
        server = DSMSServer(catalog)
        s1 = server.register(Q1)
        s2 = server.register(Q2)
        # Different queries: two fan-outs, but the DAG shares the prefix.
        assert server.shared_network_count == 2
        assert server.plan_dag.stages_shared > 0
        stats = server.run()
        shared = [s for s in server.plan_dag.order if len(s.subscribers) > 1]
        assert shared, "expected a shared reflectance prefix stage"
        n_vis_chunks = sum(
            1 for _ in catalog.get("goes.vis").chunks()
        )
        for stage in shared:
            assert stage.op.stats.chunks_in == n_vis_chunks  # once per chunk
        assert isinstance(shared[0].node, ValueMap)
        assert isinstance(shared[0].node.child, SourceScan)
        # Both queries were still routed every chunk (value queries are
        # unprunable spatially), so sharing saved real work.
        assert stats.pairs_routed == 2 * n_vis_chunks
        assert server.plan_stats.chunks_saved == n_vis_chunks
        assert len(s1.frames) == len(s2.frames) == 2

    def test_frames_bit_identical_to_unshared_execution(self, catalog):
        shared_server = DSMSServer(catalog)
        a1 = shared_server.register(Q1)
        a2 = shared_server.register(Q2)
        shared_server.run()

        unshared_server = DSMSServer(catalog, share_subplans=False)
        b1 = unshared_server.register(Q1)
        b2 = unshared_server.register(Q2)
        assert unshared_server.plan_dag.stages_shared == 0
        unshared_server.run()

        for a, b in ((a1, b1), (a2, b2)):
            fa, fb = _frames(a), _frames(b)
            assert len(fa) == len(fb) > 0
            for va, vb in zip(fa, fb):
                np.testing.assert_array_equal(va, vb)

    def test_unshared_execution_runs_prefix_per_query(self, catalog):
        server = DSMSServer(catalog, share_subplans=False)
        server.register(Q1)
        server.register(Q2)
        server.run()
        n_vis_chunks = sum(1 for _ in catalog.get("goes.vis").chunks())
        prefix_chunks = sum(
            s.op.stats.chunks_in
            for s in server.plan_dag.order
            if isinstance(s.node, ValueMap)
        )
        assert prefix_chunks == 2 * n_vis_chunks
        assert server.plan_stats.chunks_saved == 0

    def test_stages_shared_metric_published(self, catalog):
        with obs.observe() as ob:
            server = DSMSServer(catalog)
            server.register(Q1)
            server.register(Q2)
            server.run()
            assert ob.registry.gauge("repro_plan_stages_shared").value > 0
            assert ob.registry.gauge("repro_plan_chunks_saved").value > 0
            assert (
                ob.registry.gauge("repro_plan_stages_total").value
                == server.plan_dag.stages_total
            )

    def test_refcounted_teardown_on_deregister(self, catalog):
        server = DSMSServer(catalog)
        s1 = server.register(Q1)
        s2 = server.register(Q2)
        total_before = server.plan_dag.stages_total
        assert server.plan_dag.stages_shared > 0

        server.deregister(s1.session_id)
        # Query 1's private ValueRestrict stage is pruned; the previously
        # shared prefix survives for query 2, now single-subscriber.
        assert server.plan_dag.stages_total == total_before - 1
        assert server.plan_dag.stages_shared == 0
        for stage in server.plan_dag.order:
            assert stage.subscribers  # no orphaned stages

        # The survivor still runs correctly after the teardown.
        server.run()
        assert len(s2.frames) == 2

        server.deregister(s2.session_id)
        assert server.plan_dag.stages_total == 0
        assert server.plan_dag.taps == {}

    def test_teardown_keeps_results_identical(self, catalog):
        """Deregistering a sharer must not perturb the survivor's output."""
        solo_server = DSMSServer(catalog)
        solo = solo_server.register(Q2)
        solo_server.run()

        server = DSMSServer(catalog)
        s1 = server.register(Q1)
        s2 = server.register(Q2)
        server.deregister(s1.session_id)
        server.run()

        fa, fb = _frames(s2), _frames(solo)
        assert len(fa) == len(fb) > 0
        for va, vb in zip(fa, fb):
            np.testing.assert_array_equal(va, vb)

    def test_identical_queries_still_collapse_to_one_fanout(self, catalog):
        server = DSMSServer(catalog)
        server.register(Q1)
        server.register(Q1)
        assert server.shared_network_count == 1
        # Whole-plan sharing means zero extra stages, not even shared ones.
        assert server.plan_dag.stages_shared == 0
