"""Full-disk scanning: off-earth pixels through the whole pipeline."""

import numpy as np
import pytest

from repro.geo import BoundingBox, plate_carree
from repro.ingest import GOESImager, full_disk_sector
from repro.operators import FrameStretch, Reproject, SpatialRestriction, ndvi, reflectance


@pytest.fixture()
def disk_imager(scene, geos_crs):
    sector = full_disk_sector(geos_crs, width=48, height=48)
    return GOESImager(scene=scene, sector_lattice=sector, n_frames=1, t0=72_000.0)


class TestFullDisk:
    def test_sector_covers_the_limb(self, geos_crs):
        sector = full_disk_sector(geos_crs, width=32, height=32)
        lon, lat = geos_crs.to_lonlat(*sector.meshgrid())
        on_earth = np.isfinite(lon)
        # The disk fills ~pi/4 of the square, corners look into space.
        assert 0.5 < on_earth.mean() < 0.9
        assert not on_earth[0, 0] and not on_earth[-1, -1]
        assert on_earth[16, 16]

    def test_off_earth_pixels_digitize_to_zero(self, disk_imager):
        frame = disk_imager.stream("vis").collect_frames()[0]
        assert frame.values[0, 0] == 0
        assert frame.values[24, 24] > 0

    def test_reprojection_masks_space(self, disk_imager):
        out = disk_imager.stream("vis").pipe(Reproject(plate_carree())).collect_frames()[0]
        # Output covers the disk's geographic extent; some NaN at edges
        # (pixels whose inverse projection misses the disk).
        assert np.isnan(out.values).any()
        assert np.isfinite(out.values).any()

    def test_stretch_over_full_disk(self, disk_imager):
        out = disk_imager.stream("vis").pipe(FrameStretch("linear")).collect_frames()[0]
        assert out.values.min() == 0 and out.values.max() == 255

    def test_ndvi_over_disk_subregion(self, disk_imager, geos_crs):
        product = ndvi(
            reflectance(disk_imager.stream("nir")),
            reflectance(disk_imager.stream("vis")),
        )
        x0, y0 = geos_crs.from_lonlat(-125.0, 35.0)
        x1, y1 = geos_crs.from_lonlat(-115.0, 42.0)
        roi = BoundingBox(
            min(float(x0), float(x1)), min(float(y0), float(y1)),
            max(float(x0), float(x1)), max(float(y0), float(y1)),
            geos_crs,
        )
        frames = product.pipe(SpatialRestriction(roi)).collect_frames()
        assert len(frames) == 1
        finite = frames[0].values[np.isfinite(frames[0].values)]
        assert finite.size > 0
        assert finite.min() >= -1.0 and finite.max() <= 1.0
