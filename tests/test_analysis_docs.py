"""Docs and examples stay honest against the static analyzer.

Two sync contracts:

* docs/static-analysis.md documents exactly the codes in
  ``repro.analysis.diagnostics.CODES`` (heading, severity, example,
  fix hint) — the registry docstring promises this file.
* every query shipped in docs/query-language.md and examples/ analyzes
  clean against the demo catalog, so copy-pasting documentation never
  greets a new user with diagnostics.

When ``REPRO_DIAG_SUMMARY`` is set, the clean-queries test also writes
a JSON summary of every analyzed query (CI uploads it as an artifact).
"""

import ast
import importlib.util
import json
import os
import pathlib
import re
import sys

import pytest

from repro.analysis import analyze
from repro.analysis.diagnostics import CODES
from repro.cli import build_demo_catalog
from repro.geo import utm

REPO = pathlib.Path(__file__).parent.parent
DOCS = REPO / "docs"
EXAMPLES = REPO / "examples"


@pytest.fixture(scope="module")
def demo():
    return build_demo_catalog(seed=7, n_frames=2, width=96, height=48)


# -- docs/static-analysis.md <-> CODES sync ---------------------------------------


def test_static_analysis_doc_covers_every_code():
    text = (DOCS / "static-analysis.md").read_text()
    for code, info in CODES.items():
        heading = f"### {code} — {info.title} ({info.severity.value})"
        assert heading in text, f"{code}: heading missing or stale in docs"
        assert info.example in text, f"{code}: documented example drifted"
        assert info.hint in text, f"{code}: documented fix hint drifted"


def test_static_analysis_doc_has_no_phantom_codes():
    text = (DOCS / "static-analysis.md").read_text()
    documented = set(re.findall(r"^### (GS-[A-Z]+\d+)", text, flags=re.M))
    assert documented == set(CODES)


def test_doc_is_linked_from_readme_and_query_language():
    assert "static-analysis.md" in (REPO / "README.md").read_text()
    assert "static-analysis.md" in (DOCS / "query-language.md").read_text()


# -- every documented/shipped query analyzes clean --------------------------------


def _doc_queries():
    """Fenced query blocks from docs/query-language.md (by stream refs)."""
    text = (DOCS / "query-language.md").read_text()
    for block in re.findall(r"```\n(.*?)```", text, flags=re.S):
        if "goes." in block and "$" not in block:
            yield "query-language.md", " ".join(block.split())


def _example_constant_queries():
    """QUERY/QUERIES string constants from every example script."""
    for path in sorted(EXAMPLES.glob("*.py")):
        tree = ast.parse(path.read_text())
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            names = {t.id for t in node.targets if isinstance(t, ast.Name)}
            if not names & {"QUERY", "QUERIES"}:
                continue
            value = ast.literal_eval(node.value)
            texts = [value] if isinstance(value, str) else list(value)
            for text in texts:
                yield path.name, text


def _example_runtime_queries(imager):
    """Queries the examples assemble at runtime, rebuilt the same way."""
    # ndvi_monitoring.py: the paper's worked query with a UTM-10 ROI.
    utm10 = utm(10)
    x0, y0 = (float(v) for v in utm10.from_lonlat(-122.5, 37.5))
    x1, y1 = (float(v) for v in utm10.from_lonlat(-120.0, 40.0))
    yield "ndvi_monitoring.py", (
        "within(reproject(stretch(ndvi(reflectance(goes.nir), reflectance(goes.vis)),"
        f" 'linear'), 'utm:10'), bbox({min(x0, x1):.0f}, {min(y0, y1):.0f},"
        f" {max(x0, x1):.0f}, {max(y0, y1):.0f}, crs='utm:10'))"
    )
    # dsms_server_demo.py: its three clients, via the module's own helper.
    spec = importlib.util.spec_from_file_location(
        "example_dsms_server_demo", EXAMPLES / "dsms_server_demo.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    box = module.geos_bbox
    yield "dsms_server_demo.py", (
        "within(stretch(ndvi(reflectance(goes.nir), reflectance(goes.vis)), "
        f"'linear'), {box(imager, -122.5, 38.0, -120.5, 40.0)})"
    )
    yield "dsms_server_demo.py", (
        f"within(stretch(reflectance(goes.vis), 'equalize'), "
        f"{box(imager, -120.0, 32.5, -114.5, 35.5)})"
    )
    yield "dsms_server_demo.py", (
        f"ragg(reflectance(goes.vis), 'mean', 'nevada', "
        f"{box(imager, -120.0, 37.0, -114.0, 42.0)})"
    )


def test_documented_queries_analyze_clean(demo):
    imager, catalog = demo
    cases = [
        *_doc_queries(),
        *_example_constant_queries(),
        *_example_runtime_queries(imager),
    ]
    assert len(cases) >= 8  # the worked example plus the shipped examples
    summary = []
    failures = []
    for origin, text in cases:
        report = analyze(text, catalog, slo=1e9)
        summary.append(
            {
                "origin": origin,
                "query": text,
                "ok": report.ok,
                "codes": sorted(report.codes()),
            }
        )
        if len(report) > 0:  # no errors *or* warnings in shipped queries
            failures.append(f"{origin}: {text}\n{report.render()}")
    artifact = os.environ.get("REPRO_DIAG_SUMMARY")
    if artifact:
        payload = {
            "queries_analyzed": len(summary),
            "clean": not failures,
            "documented_codes": sorted(CODES),
            "results": summary,
        }
        pathlib.Path(artifact).write_text(json.dumps(payload, indent=2))
    assert not failures, "\n\n".join(failures)
