"""Shared hypothesis strategies for the test suite.

Two families:

* **Query-tree strategies** (``tree_strategy`` and friends) generate
  random algebra trees over a tiny session-cached GOES environment.
  ``test_property_algebra`` checks closure/rewrite invariants with them;
  ``test_columnar_differential`` reuses the same trees to assert oracle
  equivalence of the columnar kernels as a *property*.
* **Data-level strategies** (``lattice_strategy``, ``value_set_strategy``,
  ``grid_chunk_strategy``, ``frame_chunks_strategy``) generate arbitrary
  lattices, value domains, and well-formed chunk sequences, so operator
  kernels can be driven far outside the shapes the demo instruments emit.

Chunk values are filled from a seeded ``numpy`` generator rather than
drawn elementwise: hypothesis shrinks the *seed*, which keeps examples
fast while staying fully deterministic.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core import (
    FLOAT32,
    FLOAT64,
    GRAY8,
    GRAY16,
    FrameInfo,
    GridChunk,
    GridLattice,
    REFLECTANCE,
    TimeInterval,
    ValueSet,
)
from repro.geo import BoundingBox, goes_geostationary
from repro.geo.crs import LATLON
from repro.ingest import GOESImager, SyntheticEarth, western_us_sector
from repro.query import ast as q

__all__ = [
    "GEOS",
    "SECTOR",
    "SOURCES",
    "CRS_OF",
    "BOX",
    "region_strategy",
    "leaf_strategy",
    "tree_strategy",
    "value_set_strategy",
    "lattice_strategy",
    "grid_chunk_strategy",
    "frame_chunks_strategy",
    "values_for",
]

# A tiny, module-cached source environment so each hypothesis example is fast.
GEOS = goes_geostationary(-135.0)
SECTOR = western_us_sector(GEOS, width=24, height=12)
_IMAGER = GOESImager(
    scene=SyntheticEarth(seed=3),
    sector_lattice=SECTOR,
    n_frames=1,
    t0=72_000.0,
)
SOURCES = {
    "goes.vis": GOESImager.stream(_IMAGER, "vis"),
    "goes.nir": GOESImager.stream(_IMAGER, "nir"),
}
CRS_OF = {sid: s.crs for sid, s in SOURCES.items()}
BOX = SECTOR.bbox


# -- query-tree strategies --------------------------------------------------------


def region_strategy(box: BoundingBox | None = None):
    """Sub-boxes of ``box`` (default: the shared test sector's extent)."""
    bbox = BOX if box is None else box
    return st.tuples(
        st.floats(0.0, 0.7), st.floats(0.0, 0.7), st.floats(0.1, 0.3), st.floats(0.1, 0.3)
    ).map(
        lambda t: BoundingBox(
            bbox.xmin + bbox.width * t[0],
            bbox.ymin + bbox.height * t[1],
            min(bbox.xmin + bbox.width * (t[0] + t[2]), bbox.xmax),
            min(bbox.ymin + bbox.height * (t[1] + t[3]), bbox.ymax),
            bbox.crs,
        )
    )


def leaf_strategy(stream_ids: tuple[str, ...] = ("goes.vis", "goes.nir")):
    return st.sampled_from([q.StreamRef(sid) for sid in stream_ids])


def tree_strategy(max_depth: int = 4):
    """Random query trees over the shared sources (closed algebra)."""

    def extend(children):
        unary = st.one_of(
            st.tuples(children, region_strategy()).map(
                lambda t: q.SpatialRestrict(t[0], t[1])
            ),
            st.tuples(children, st.floats(0.0, 3_000.0), st.floats(3_000.0, 90_000.0)).map(
                lambda t: q.TemporalRestrict(
                    t[0], TimeInterval(72_000.0 + t[1], 72_000.0 + t[2])
                )
            ),
            st.tuples(children, st.floats(0.1, 4.0), st.floats(-10.0, 10.0)).map(
                lambda t: q.ValueMap(
                    t[0], "rescale", (("gain", t[1]), ("offset", t[2]))
                )
            ),
            st.tuples(children, st.floats(0.0, 400.0), st.floats(500.0, 1100.0)).map(
                lambda t: q.ValueRestrict(t[0], t[1], t[2])
            ),
            st.tuples(children, st.integers(1, 3)).map(lambda t: q.Magnify(t[0], t[1])),
            st.tuples(children, st.integers(1, 3)).map(lambda t: q.Coarsen(t[0], t[1])),
        )
        binary = st.tuples(children, children, st.sampled_from(["+", "-", "*", "sup", "inf"])).map(
            lambda t: q.Compose(t[0], t[1], t[2])
        )
        return st.one_of(unary, binary)

    return st.recursive(leaf_strategy(), extend, max_leaves=max_depth)


# -- data-level strategies --------------------------------------------------------

# Standard sets plus hand-built ones so bounds/dtype handling is exercised
# beyond what the shipped instruments use.
_SCALAR_SETS: tuple[ValueSet, ...] = (
    GRAY8,
    GRAY16,
    FLOAT32,
    FLOAT64,
    REFLECTANCE,
    ValueSet("u8.clip", np.dtype("uint8"), lo=0, hi=200),
    ValueSet("i16.signed", np.dtype("int16"), lo=-500, hi=500),
    ValueSet("f64.unit", np.dtype("float64"), lo=-1.0, hi=1.0),
)


def value_set_strategy():
    """Scalar value domains: shipped constants plus custom bounded sets."""
    return st.sampled_from(_SCALAR_SETS)


def lattice_strategy(
    min_side: int = 1,
    max_side: int = 8,
    crs_pool: tuple = (LATLON, GEOS),
):
    """Small north-up grid lattices with arbitrary origin and resolution."""
    return st.builds(
        GridLattice,
        crs=st.sampled_from(crs_pool),
        x0=st.floats(-1_000.0, 1_000.0),
        y0=st.floats(-1_000.0, 1_000.0),
        dx=st.floats(0.01, 50.0),
        dy=st.floats(0.01, 50.0).map(lambda d: -d),
        width=st.integers(min_side, max_side),
        height=st.integers(min_side, max_side),
    )


def values_for(value_set: ValueSet, shape: tuple[int, ...], seed: int) -> np.ndarray:
    """Deterministic in-domain values of ``value_set.dtype`` for ``shape``."""
    rng = np.random.default_rng(seed)
    lo, hi = value_set.bounds
    lo = float(max(lo, -1.0e4))
    hi = float(min(hi, 1.0e4))
    raw = rng.uniform(lo, hi, size=shape)
    if value_set.is_integer:
        raw = np.rint(raw)
    return raw.astype(value_set.dtype)


@st.composite
def grid_chunk_strategy(draw, min_side: int = 1, max_side: int = 8):
    """A single whole-frame GridChunk over an arbitrary lattice/domain."""
    lattice = draw(lattice_strategy(min_side, max_side))
    value_set = draw(value_set_strategy())
    seed = draw(st.integers(0, 2**32 - 1))
    t = draw(st.floats(0.0, 100_000.0))
    band = draw(st.sampled_from(["vis", "nir", "b1"]))
    sector = draw(st.one_of(st.none(), st.integers(0, 7)))
    frame_id = draw(st.integers(0, 5))
    return GridChunk(
        values=values_for(value_set, lattice.shape, seed),
        lattice=lattice,
        band=band,
        t=t,
        sector=sector,
        frame=FrameInfo(frame_id, lattice),
        row0=0,
        col0=0,
        last_in_frame=True,
    )


@st.composite
def frame_chunks_strategy(
    draw,
    min_side: int = 2,
    max_side: int = 10,
    n_frames: int = 2,
):
    """Well-formed frame sequences, whole-frame or split row-by-row.

    Returns ``(chunks, value_set)``: every frame shares one lattice and
    value domain, frames carry increasing ids/timestamps, and row-split
    frames tag each row with its ``row0`` and the frame's ``FrameInfo`` —
    exactly the invariants the shipped instruments guarantee.
    """
    lattice = draw(lattice_strategy(min_side, max_side))
    value_set = draw(value_set_strategy())
    row_by_row = draw(st.booleans())
    seed = draw(st.integers(0, 2**32 - 1))
    t0 = draw(st.floats(0.0, 90_000.0))
    band = draw(st.sampled_from(["vis", "nir"]))
    chunks: list[GridChunk] = []
    for frame_id in range(n_frames):
        frame_values = values_for(value_set, lattice.shape, seed + frame_id)
        frame = FrameInfo(frame_id, lattice)
        t_frame = t0 + 60.0 * frame_id
        if not row_by_row:
            chunks.append(
                GridChunk(
                    values=frame_values,
                    lattice=lattice,
                    band=band,
                    t=t_frame,
                    sector=frame_id,
                    frame=frame,
                    row0=0,
                    col0=0,
                    last_in_frame=True,
                )
            )
            continue
        for row in range(lattice.height):
            chunks.append(
                GridChunk(
                    values=frame_values[row : row + 1],
                    lattice=lattice.row_lattice(row),
                    band=band,
                    t=t_frame + 0.1 * row,
                    sector=frame_id,
                    frame=frame,
                    row0=row,
                    col0=0,
                    last_in_frame=row == lattice.height - 1,
                )
            )
    return chunks, value_set
