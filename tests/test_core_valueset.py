"""Value sets (Def. 2): membership, coercion, promotion."""

import numpy as np
import pytest

from repro.core import (
    FLOAT32,
    GRAY10,
    GRAY16,
    GRAY8,
    NDVI_VALUES,
    REFLECTANCE,
    RGB8,
    ValueSet,
    promote,
)
from repro.errors import ValueSetError


class TestConstruction:
    def test_invalid_channels(self):
        with pytest.raises(ValueSetError):
            ValueSet("bad", np.uint8, channels=0)

    def test_inverted_bounds(self):
        with pytest.raises(ValueSetError):
            ValueSet("bad", np.float32, lo=1.0, hi=0.0)

    def test_gray10_models_gvar(self):
        assert GRAY10.bounds == (0.0, 1023.0)
        assert GRAY10.dtype == np.dtype(np.uint16)


class TestMembership:
    def test_contains_checks_dtype(self):
        assert GRAY8.contains(np.zeros((2, 2), dtype=np.uint8))
        assert not GRAY8.contains(np.zeros((2, 2), dtype=np.uint16))

    def test_contains_checks_bounds(self):
        arr = np.full((2, 2), 2000, dtype=np.uint16)
        assert not GRAY10.contains(arr)
        assert GRAY16.contains(arr)

    def test_vector_shape_checked(self):
        assert RGB8.contains(np.zeros((2, 2, 3), dtype=np.uint8))
        assert not RGB8.contains(np.zeros((2, 2), dtype=np.uint8))
        assert not RGB8.contains(np.zeros((2, 2, 4), dtype=np.uint8))

    def test_nan_allowed_for_floats(self):
        arr = np.array([np.nan, 0.5], dtype=np.float32)
        assert REFLECTANCE.contains(arr)

    def test_bounded_float(self):
        assert NDVI_VALUES.contains(np.array([-1.0, 1.0], dtype=np.float32))
        assert not NDVI_VALUES.contains(np.array([1.5], dtype=np.float32))

    def test_validate_raises_with_context(self):
        with pytest.raises(ValueSetError, match="my-band"):
            GRAY8.validate(np.zeros((2,), dtype=np.int64), context="my-band")


class TestCoercion:
    def test_clip_and_round(self):
        out = GRAY8.coerce(np.array([-5.0, 100.4, 300.0]))
        np.testing.assert_array_equal(out, [0, 100, 255])
        assert out.dtype == np.uint8

    def test_float_target_keeps_precision(self):
        out = FLOAT32.coerce(np.array([1.25]))
        assert out.dtype == np.float32
        assert float(out[0]) == 1.25

    def test_vector_channel_check(self):
        with pytest.raises(ValueSetError):
            RGB8.coerce(np.zeros((2, 2)))

    def test_ndvi_clips_into_range(self):
        out = NDVI_VALUES.coerce(np.array([-2.0, 0.5, 2.0]))
        np.testing.assert_allclose(out, [-1.0, 0.5, 1.0])

    def test_nbytes_per_point(self):
        assert GRAY8.nbytes_per_point() == 1
        assert GRAY16.nbytes_per_point() == 2
        assert RGB8.nbytes_per_point() == 3


class TestPromotion:
    def test_same_set(self):
        out = promote(REFLECTANCE, REFLECTANCE)
        assert out.dtype == np.dtype(np.float32)
        assert out.lo is None and out.hi is None  # arithmetic may leave bounds

    def test_integer_promotes_to_float(self):
        out = promote(GRAY10, GRAY10)
        assert np.issubdtype(out.dtype, np.floating)

    def test_mixed_width(self):
        out = promote(GRAY8, FLOAT32)
        assert out.dtype == np.dtype(np.float32)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueSetError):
            promote(RGB8, GRAY8)
