"""Region semantics: the three specification styles of Section 3.1."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RegionError
from repro.geo import (
    LATLON,
    BoundingBox,
    ConstraintRegion,
    EnumeratedRegion,
    HalfPlane,
    IntersectionRegion,
    PolygonRegion,
    PolynomialConstraint,
    UnionRegion,
    intersect_regions,
    utm,
)

boxes = st.tuples(
    st.floats(-100, 100), st.floats(-100, 100), st.floats(0.1, 50), st.floats(0.1, 50)
).map(lambda t: BoundingBox(t[0], t[1], t[0] + t[2], t[1] + t[3]))


class TestBoundingBox:
    def test_degenerate_rejected(self):
        with pytest.raises(RegionError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_zero_area_allowed(self):
        b = BoundingBox(1.0, 1.0, 1.0, 1.0)
        assert b.is_degenerate and b.area == 0.0

    def test_mask_inclusive_edges(self):
        b = BoundingBox(0.0, 0.0, 10.0, 5.0)
        x = np.array([0.0, 10.0, 5.0, -0.1, 10.1])
        y = np.array([0.0, 5.0, 2.5, 2.0, 2.0])
        np.testing.assert_array_equal(b.mask(x, y), [True, True, True, False, False])

    def test_geometry_properties(self):
        b = BoundingBox(0.0, 0.0, 4.0, 2.0)
        assert b.width == 4.0 and b.height == 2.0
        assert b.area == 8.0
        assert b.center == (2.0, 1.0)

    @given(b1=boxes, b2=boxes)
    @settings(max_examples=80, deadline=None)
    def test_intersection_consistency(self, b1, b2):
        inter = b1.intersection(b2)
        if inter is None:
            assert not b1.intersects(b2)
        else:
            assert b1.intersects(b2)
            assert b1.contains_box(inter) and b2.contains_box(inter)
            assert inter.area <= min(b1.area, b2.area) + 1e-9

    @given(b1=boxes, b2=boxes)
    @settings(max_examples=50, deadline=None)
    def test_union_contains_both(self, b1, b2):
        u = b1.union(b2)
        assert u.contains_box(b1) and u.contains_box(b2)

    def test_expanded(self):
        b = BoundingBox(0.0, 0.0, 2.0, 2.0).expanded(1.0)
        assert (b.xmin, b.ymin, b.xmax, b.ymax) == (-1.0, -1.0, 3.0, 3.0)

    def test_from_points_skips_nonfinite(self):
        x = np.array([1.0, np.nan, 3.0])
        y = np.array([2.0, 5.0, 4.0])
        b = BoundingBox.from_points(x, y)
        assert (b.xmin, b.ymin, b.xmax, b.ymax) == (1.0, 2.0, 3.0, 4.0)

    def test_from_points_all_nan_raises(self):
        with pytest.raises(RegionError):
            BoundingBox.from_points(np.array([np.nan]), np.array([np.nan]))

    def test_crs_mismatch_rejected(self):
        a = BoundingBox(0, 0, 1, 1, LATLON)
        b = BoundingBox(0, 0, 1, 1, utm(10))
        from repro.errors import CRSMismatchError

        with pytest.raises(CRSMismatchError):
            a.intersects(b)

    def test_transformed_is_conservative(self):
        """The transformed box contains the image of every interior point."""
        box = BoundingBox(-123.0, 37.0, -120.0, 40.0, LATLON)
        dst = utm(10)
        out = box.transformed(dst)
        rng = np.random.default_rng(0)
        lon = rng.uniform(box.xmin, box.xmax, 200)
        lat = rng.uniform(box.ymin, box.ymax, 200)
        x, y = dst.from_lonlat(lon, lat)
        assert bool(np.all(out.mask(x, y)))

    def test_transformed_same_crs_is_self(self):
        box = BoundingBox(0, 0, 1, 1, LATLON)
        assert box.transformed(LATLON) is box


class TestPolygonRegion:
    def test_triangle_membership(self):
        tri = PolygonRegion([(0, 0), (4, 0), (0, 4)])
        assert tri.contains_point(1.0, 1.0)
        assert not tri.contains_point(3.0, 3.0)

    def test_closed_ring_accepted(self):
        tri = PolygonRegion([(0, 0), (4, 0), (0, 4), (0, 0)])
        assert tri.vertices.shape == (3, 2)

    def test_too_few_vertices(self):
        with pytest.raises(RegionError):
            PolygonRegion([(0, 0), (1, 1)])

    def test_concave_polygon(self):
        # A "C" shape: the notch must be outside.
        c = PolygonRegion([(0, 0), (4, 0), (4, 1), (1, 1), (1, 3), (4, 3), (4, 4), (0, 4)])
        assert c.contains_point(0.5, 2.0)
        assert not c.contains_point(2.5, 2.0)

    def test_bounding_box(self):
        tri = PolygonRegion([(0, 0), (4, 0), (0, 4)])
        b = tri.bounding_box
        assert (b.xmin, b.ymin, b.xmax, b.ymax) == (0.0, 0.0, 4.0, 4.0)

    def test_mask_vectorized_shape(self):
        tri = PolygonRegion([(0, 0), (4, 0), (0, 4)])
        x, y = np.meshgrid(np.linspace(0, 4, 5), np.linspace(0, 4, 5))
        assert tri.mask(x, y).shape == (5, 5)

    def test_transformed_membership_preserved(self):
        tri = PolygonRegion([(-123.0, 37.0), (-120.0, 37.0), (-121.5, 40.0)], LATLON)
        out = tri.transformed(utm(10))
        # Interior point maps to interior of the transformed polygon.
        x, y = utm(10).from_lonlat(-121.5, 38.0)
        assert out.contains_point(float(x), float(y))


class TestConstraintRegion:
    def test_halfplane_box(self):
        # x <= 4, -x <= 0, y <= 3, -y <= 0: the [0,4]x[0,3] rectangle.
        region = ConstraintRegion(
            [
                HalfPlane(1, 0, 4),
                HalfPlane(-1, 0, 0),
                HalfPlane(0, 1, 3),
                HalfPlane(0, -1, 0),
            ]
        )
        assert region.contains_point(2.0, 1.0)
        assert not region.contains_point(5.0, 1.0)
        b = region.bounding_box
        assert (b.xmin, b.ymin, b.xmax, b.ymax) == (0.0, 0.0, 4.0, 3.0)

    def test_diagonal_halfplane_needs_explicit_bbox(self):
        with pytest.raises(RegionError):
            ConstraintRegion([HalfPlane(1, 1, 4)])

    def test_disk(self):
        disk = ConstraintRegion.disk(1.0, 2.0, 3.0)
        assert disk.contains_point(1.0, 2.0)
        assert disk.contains_point(4.0, 2.0)  # boundary inclusive
        assert not disk.contains_point(4.1, 2.0)
        b = disk.bounding_box
        assert b.xmin == pytest.approx(-2.0) and b.xmax == pytest.approx(4.0)

    def test_polynomial_evaluation(self):
        # x^2 - y <= 0, i.e. above the parabola.
        p = PolynomialConstraint.from_dict({(2, 0): 1.0, (0, 1): -1.0})
        assert bool(p.satisfied(np.array([1.0]), np.array([2.0]))[0])
        assert not bool(p.satisfied(np.array([2.0]), np.array([1.0]))[0])

    def test_empty_constraints_rejected(self):
        with pytest.raises(RegionError):
            ConstraintRegion([])


class TestEnumeratedRegion:
    def test_membership_with_tolerance(self):
        region = EnumeratedRegion([(1.0, 2.0), (3.0, 4.0)], tolerance=0.01)
        assert region.contains_point(1.0, 2.0)
        assert region.contains_point(1.004, 2.004)
        assert not region.contains_point(1.2, 2.0)
        assert not region.contains_point(3.0, 2.0)  # no cross pairing

    def test_empty_rejected(self):
        with pytest.raises(RegionError):
            EnumeratedRegion([])

    def test_bad_tolerance_rejected(self):
        with pytest.raises(RegionError):
            EnumeratedRegion([(0, 0)], tolerance=0.0)

    def test_transformed(self):
        region = EnumeratedRegion([(-121.5, 38.0)], LATLON, tolerance=1e-6)
        out = region.transformed(utm(10))
        x, y = utm(10).from_lonlat(-121.5, 38.0)
        assert out.contains_point(float(x), float(y))


class TestCombinators:
    def test_intersection_masks(self):
        a = BoundingBox(0, 0, 4, 4)
        b = BoundingBox(2, 2, 6, 6)
        inter = IntersectionRegion([a, b])
        assert inter.contains_point(3.0, 3.0)
        assert not inter.contains_point(1.0, 1.0)
        bb = inter.bounding_box
        assert (bb.xmin, bb.ymin, bb.xmax, bb.ymax) == (2.0, 2.0, 4.0, 4.0)

    def test_disjoint_intersection_is_empty(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(5, 5, 6, 6)
        inter = IntersectionRegion([a, b])
        assert inter.is_empty_hint
        x, y = np.meshgrid(np.linspace(0, 6, 7), np.linspace(0, 6, 7))
        assert not inter.mask(x, y).any()

    def test_union_masks(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(5, 5, 6, 6)
        u = UnionRegion([a, b])
        assert u.contains_point(0.5, 0.5)
        assert u.contains_point(5.5, 5.5)
        assert not u.contains_point(3.0, 3.0)

    def test_intersect_regions_simplifies_boxes(self):
        a = BoundingBox(0, 0, 4, 4)
        b = BoundingBox(2, 2, 6, 6)
        out = intersect_regions(a, b)
        assert isinstance(out, BoundingBox)
        assert (out.xmin, out.ymin, out.xmax, out.ymax) == (2.0, 2.0, 4.0, 4.0)

    def test_intersect_regions_mixed_types(self):
        a = BoundingBox(0, 0, 4, 4)
        tri = PolygonRegion([(0, 0), (4, 0), (0, 4)])
        out = intersect_regions(a, tri)
        assert isinstance(out, IntersectionRegion)
        assert out.contains_point(1.0, 1.0)
        assert not out.contains_point(3.9, 3.9)

    @given(b1=boxes, b2=boxes)
    @settings(max_examples=50, deadline=None)
    def test_intersection_mask_equals_conjunction(self, b1, b2):
        region = intersect_regions(b1, b2)
        rng = np.random.default_rng(42)
        x = rng.uniform(-110, 160, 100)
        y = rng.uniform(-110, 160, 100)
        expected = b1.mask(x, y) & b2.mask(x, y)
        np.testing.assert_array_equal(region.mask(x, y), expected)
