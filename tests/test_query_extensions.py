"""Extended query features: empty-query elimination, value-restriction
pushdown, spatio-temporal aggregate macro, Empty planning."""

import numpy as np
import pytest

from repro.core import TimeInterval
from repro.geo import BoundingBox
from repro.operators import spatio_temporal_aggregate
from repro.query import ast as q, optimize, parse_query, plan_query


@pytest.fixture()
def crs_of(catalog):
    return dict(catalog.crs_of())


@pytest.fixture()
def sources(catalog):
    return {sid: catalog.get(sid) for sid in catalog.ids()}


class TestEmptyElimination:
    def test_disjoint_spatial_restrictions(self, small_imager, crs_of):
        box = small_imager.sector_lattice.bbox
        r1 = BoundingBox(box.xmin, box.ymin, box.xmin + 10, box.ymin + 10, box.crs)
        r2 = BoundingBox(box.xmax - 10, box.ymax - 10, box.xmax, box.ymax, box.crs)
        tree = q.SpatialRestrict(q.SpatialRestrict(q.StreamRef("goes.vis"), r1), r2)
        result = optimize(tree, crs_of)
        assert isinstance(result.node, q.Empty)
        assert "prune-empty" in result.applied

    def test_empty_timeset(self, crs_of):
        from repro.core import intersect_timesets

        empty = intersect_timesets(TimeInterval(0.0, 1.0), TimeInterval(5.0, 6.0))
        tree = q.TemporalRestrict(q.StreamRef("goes.vis"), empty)
        result = optimize(tree, crs_of)
        assert isinstance(result.node, q.Empty)

    def test_inverted_value_range(self, crs_of):
        tree = q.ValueRestrict(q.StreamRef("goes.vis"), lo=10.0, hi=5.0)
        result = optimize(tree, crs_of)
        assert isinstance(result.node, q.Empty)

    def test_emptiness_propagates_through_unary(self, crs_of):
        tree = q.Stretch(q.ValueRestrict(q.StreamRef("goes.vis"), 10.0, 5.0), "linear")
        result = optimize(tree, crs_of)
        assert isinstance(result.node, q.Empty)

    def test_emptiness_propagates_through_compose(self, crs_of):
        tree = q.Compose(
            q.ValueRestrict(q.StreamRef("goes.nir"), 10.0, 5.0),
            q.StreamRef("goes.vis"),
            "-",
        )
        result = optimize(tree, crs_of)
        assert isinstance(result.node, q.Empty)

    def test_empty_plan_executes_to_nothing(self, sources):
        plan = plan_query(q.Empty("test"), sources)
        assert plan.collect_chunks() == []
        assert plan.count_points() == 0

    def test_empty_registered_on_dsms_costs_nothing(self, small_imager, catalog):
        from repro.server import DSMSServer

        server = DSMSServer(catalog)
        box = small_imager.sector_lattice.bbox
        r1 = BoundingBox(box.xmin, box.ymin, box.xmin + 1, box.ymin + 1, box.crs)
        r2 = BoundingBox(box.xmax - 1, box.ymax - 1, box.xmax, box.ymax, box.crs)
        session = server.register(
            q.SpatialRestrict(q.SpatialRestrict(q.StreamRef("goes.vis"), r1), r2)
        )
        server.run()
        assert session.chunks_received == 0
        assert session.frames == []

    def test_non_empty_not_pruned(self, small_imager, crs_of):
        box = small_imager.sector_lattice.bbox
        tree = q.SpatialRestrict(q.StreamRef("goes.vis"), box)
        result = optimize(tree, crs_of)
        assert not isinstance(result.node, q.Empty)


class TestValueRestrictPushdown:
    def test_positive_gain(self, crs_of):
        tree = q.ValueRestrict(
            q.ValueMap(q.StreamRef("goes.vis"), "rescale", (("gain", 2.0), ("offset", 10.0))),
            20.0,
            30.0,
        )
        result = optimize(tree, crs_of)
        assert "push-value-rescale" in result.applied
        assert isinstance(result.node, q.ValueMap)
        inner = result.node.child
        assert isinstance(inner, q.ValueRestrict)
        assert inner.lo == 5.0 and inner.hi == 10.0

    def test_negative_gain_swaps_bounds(self, crs_of):
        tree = q.ValueRestrict(
            q.ValueMap(q.StreamRef("goes.vis"), "rescale", (("gain", -1.0), ("offset", 0.0))),
            -10.0,
            -5.0,
        )
        result = optimize(tree, crs_of)
        inner = result.node.child
        assert inner.lo == 5.0 and inner.hi == 10.0

    def test_zero_gain_not_pushed(self, crs_of):
        tree = q.ValueRestrict(
            q.ValueMap(q.StreamRef("goes.vis"), "rescale", (("gain", 0.0), ("offset", 1.0))),
            0.0,
            2.0,
        )
        result = optimize(tree, crs_of)
        assert isinstance(result.node, q.ValueRestrict)

    def test_open_bound_preserved(self, crs_of):
        tree = q.ValueRestrict(
            q.ValueMap(q.StreamRef("goes.vis"), "rescale", (("gain", 2.0), ("offset", 0.0))),
            lo=10.0,
            hi=None,
        )
        result = optimize(tree, crs_of)
        inner = result.node.child
        assert inner.lo == 5.0 and inner.hi is None

    def test_rewrite_is_equivalent(self, small_imager, sources, crs_of):
        tree = q.ValueRestrict(
            q.ValueMap(q.StreamRef("goes.vis"), "rescale", (("gain", 0.5), ("offset", 3.0))),
            100.0,
            200.0,
        )
        optimized = optimize(tree, crs_of).node
        a = plan_query(tree, sources).collect_frames()
        b = plan_query(optimized, sources).collect_frames()
        assert len(a) == len(b)
        for x, y in zip(a, b):
            np.testing.assert_allclose(x.values, y.values, atol=1e-5, equal_nan=True)


class TestSpatioTemporalAggregate:
    def test_macro_shape(self, small_imager):
        stream = small_imager.stream("vis")
        out = spatio_temporal_aggregate(stream, spatial_k=4, window=2, func="mean")
        frames = out.collect_frames()
        assert len(frames) == 1  # 2 frames in, window 2 sliding
        assert frames[0].shape == (12, 24)

    def test_macro_equals_manual_composition(self, small_imager):
        from repro.operators import Coarsen, TemporalAggregate

        stream = small_imager.stream("vis")
        macro = spatio_temporal_aggregate(stream, 4, 2, "max").collect_frames()
        manual = stream.pipe(Coarsen(4), TemporalAggregate(2, "max")).collect_frames()
        np.testing.assert_allclose(macro[0].values, manual[0].values)

    def test_stagg_query_language(self, sources):
        tree = parse_query("stagg(goes.vis, 'mean', 4, 2)")
        assert isinstance(tree, q.TemporalAgg)
        assert isinstance(tree.child, q.Coarsen)
        plan = plan_query(tree, sources)
        frames = plan.collect_frames()
        assert len(frames) == 1

    def test_stagg_mode_kwarg(self):
        tree = parse_query("stagg(goes.vis, 'sum', 2, 2, mode='tumbling')")
        assert tree.mode == "tumbling"

    def test_stagg_arity_checked(self):
        from repro.errors import QuerySyntaxError

        with pytest.raises(QuerySyntaxError):
            parse_query("stagg(goes.vis, 'mean', 4)")
