"""Property-based tests over the query algebra itself.

Hypothesis generates random query trees; we check the global invariants:

* the algebra is closed — every generated tree plans to a GeoStream that
  executes without error and yields well-formed chunks;
* the optimizer is idempotent — a second pass changes nothing;
* exact rewrite rules preserve results bit-for-bit (inexact stretch
  pushdown disabled);
* metadata propagation matches execution (declared CRS == chunk CRS).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import GridChunk
from repro.query import ast as q, optimize, plan_query

from tests.strategies import CRS_OF as _CRS_OF, SOURCES as _SOURCES, region_strategy, tree_strategy


def collect(tree):
    plan = plan_query(tree, _SOURCES)
    return plan.collect_chunks()


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tree=tree_strategy())
def test_closure_random_trees_execute(tree):
    """Every generated tree denotes an executable GeoStream."""
    chunks = collect(tree)
    for chunk in chunks:
        assert isinstance(chunk, GridChunk)
        assert chunk.values.shape[:2] == chunk.lattice.shape
        assert np.isfinite(chunk.t)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tree=tree_strategy())
def test_optimizer_idempotent(tree):
    once = optimize(tree, _CRS_OF, allow_inexact=True).node
    twice = optimize(once, _CRS_OF, allow_inexact=True).node
    assert once == twice


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tree=tree_strategy())
def test_exact_rewrites_preserve_results(tree):
    """With inexact rules disabled, rewritten plans match bit-for-bit."""
    optimized = optimize(tree, _CRS_OF, allow_inexact=False).node
    a = collect(tree)
    b = collect(optimized)
    points_a = sum(c.n_points for c in a)
    points_b = sum(c.n_points for c in b)
    assert points_a == points_b
    if a and b:
        va = np.concatenate([c.values.astype(float).ravel() for c in a])
        vb = np.concatenate([c.values.astype(float).ravel() for c in b])
        # Chunk boundaries may differ; compare sorted multisets of values.
        np.testing.assert_allclose(
            np.sort(va[~np.isnan(va)]), np.sort(vb[~np.isnan(vb)]), atol=1e-5
        )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tree=tree_strategy())
def test_metadata_matches_execution(tree):
    plan = plan_query(tree, _SOURCES)
    declared_crs = plan.metadata.crs
    for chunk in plan.chunks():
        assert chunk.lattice.crs == declared_crs


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tree=tree_strategy(), region=region_strategy())
def test_restriction_commutes_with_itself(tree, region):
    """|R applied twice equals once (idempotence of restriction)."""
    once = collect(q.SpatialRestrict(tree, region))
    twice = collect(q.SpatialRestrict(q.SpatialRestrict(tree, region), region))
    assert sum(c.n_points for c in once) == sum(c.n_points for c in twice)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 2**16),
    region=region_strategy(),
    restriction=st.sampled_from(["spatial", "value"]),
)
def test_reorder_faults_commute_with_nonblocking_restriction(seed, region, restriction):
    """Chunk reordering commutes with non-blocking restrictions.

    A restriction that processes chunks statelessly maps any permutation
    of its input to a permutation of its output, so injecting reorder
    faults before or after it yields the same materialized image — the
    multiset of restricted chunks is invariant. (This is exactly why the
    FrameGuard may re-sort a frame's rows without changing query results.)
    """
    from repro.faults import FaultInjector, FaultSpec
    from repro.operators import SpatialRestriction, ValueRestriction

    def make_op():
        if restriction == "spatial":
            return SpatialRestriction(region)
        return ValueRestriction(200.0, 900.0)

    spec = FaultSpec(seed=seed, reorder=0.3)
    base = _SOURCES["goes.vis"]
    faults_before = FaultInjector(spec).wrap_stream(base).pipe(make_op())
    faults_after = FaultInjector(spec).wrap_stream(base.pipe(make_op()))

    def multiset(stream):
        return sorted(
            (c.t, c.row0, c.col0, c.band, c.values.tobytes()) for c in stream.chunks()
        )

    assert multiset(faults_before) == multiset(faults_after)
