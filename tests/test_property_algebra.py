"""Property-based tests over the query algebra itself.

Hypothesis generates random query trees; we check the global invariants:

* the algebra is closed — every generated tree plans to a GeoStream that
  executes without error and yields well-formed chunks;
* the optimizer is idempotent — a second pass changes nothing;
* exact rewrite rules preserve results bit-for-bit (inexact stretch
  pushdown disabled);
* metadata propagation matches execution (declared CRS == chunk CRS).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import GridChunk, TimeInterval
from repro.geo import BoundingBox, goes_geostationary
from repro.ingest import GOESImager, SyntheticEarth, western_us_sector
from repro.query import ast as q, optimize, plan_query

# A tiny, session-cached source environment so each hypothesis example is fast.
_GEOS = goes_geostationary(-135.0)
_SECTOR = western_us_sector(_GEOS, width=24, height=12)
_IMAGER = GOESImager(
    scene=SyntheticEarth(seed=3),
    sector_lattice=_SECTOR,
    n_frames=1,
    t0=72_000.0,
)
_SOURCES = {
    "goes.vis": GOESImager.stream(_IMAGER, "vis"),
    "goes.nir": GOESImager.stream(_IMAGER, "nir"),
}
_CRS_OF = {sid: s.crs for sid, s in _SOURCES.items()}
_BOX = _SECTOR.bbox


def region_strategy():
    return st.tuples(
        st.floats(0.0, 0.7), st.floats(0.0, 0.7), st.floats(0.1, 0.3), st.floats(0.1, 0.3)
    ).map(
        lambda t: BoundingBox(
            _BOX.xmin + _BOX.width * t[0],
            _BOX.ymin + _BOX.height * t[1],
            min(_BOX.xmin + _BOX.width * (t[0] + t[2]), _BOX.xmax),
            min(_BOX.ymin + _BOX.height * (t[1] + t[3]), _BOX.ymax),
            _BOX.crs,
        )
    )


def leaf_strategy():
    return st.sampled_from([q.StreamRef("goes.vis"), q.StreamRef("goes.nir")])


def tree_strategy(max_depth: int = 4):
    def extend(children):
        unary = st.one_of(
            st.tuples(children, region_strategy()).map(
                lambda t: q.SpatialRestrict(t[0], t[1])
            ),
            st.tuples(children, st.floats(0.0, 3_000.0), st.floats(3_000.0, 90_000.0)).map(
                lambda t: q.TemporalRestrict(
                    t[0], TimeInterval(72_000.0 + t[1], 72_000.0 + t[2])
                )
            ),
            st.tuples(children, st.floats(0.1, 4.0), st.floats(-10.0, 10.0)).map(
                lambda t: q.ValueMap(
                    t[0], "rescale", (("gain", t[1]), ("offset", t[2]))
                )
            ),
            st.tuples(children, st.floats(0.0, 400.0), st.floats(500.0, 1100.0)).map(
                lambda t: q.ValueRestrict(t[0], t[1], t[2])
            ),
            st.tuples(children, st.integers(1, 3)).map(lambda t: q.Magnify(t[0], t[1])),
            st.tuples(children, st.integers(1, 3)).map(lambda t: q.Coarsen(t[0], t[1])),
        )
        binary = st.tuples(children, children, st.sampled_from(["+", "-", "*", "sup", "inf"])).map(
            lambda t: q.Compose(t[0], t[1], t[2])
        )
        return st.one_of(unary, binary)

    return st.recursive(leaf_strategy(), extend, max_leaves=4)


def collect(tree):
    plan = plan_query(tree, _SOURCES)
    return plan.collect_chunks()


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tree=tree_strategy())
def test_closure_random_trees_execute(tree):
    """Every generated tree denotes an executable GeoStream."""
    chunks = collect(tree)
    for chunk in chunks:
        assert isinstance(chunk, GridChunk)
        assert chunk.values.shape[:2] == chunk.lattice.shape
        assert np.isfinite(chunk.t)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tree=tree_strategy())
def test_optimizer_idempotent(tree):
    once = optimize(tree, _CRS_OF, allow_inexact=True).node
    twice = optimize(once, _CRS_OF, allow_inexact=True).node
    assert once == twice


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tree=tree_strategy())
def test_exact_rewrites_preserve_results(tree):
    """With inexact rules disabled, rewritten plans match bit-for-bit."""
    optimized = optimize(tree, _CRS_OF, allow_inexact=False).node
    a = collect(tree)
    b = collect(optimized)
    points_a = sum(c.n_points for c in a)
    points_b = sum(c.n_points for c in b)
    assert points_a == points_b
    if a and b:
        va = np.concatenate([c.values.astype(float).ravel() for c in a])
        vb = np.concatenate([c.values.astype(float).ravel() for c in b])
        # Chunk boundaries may differ; compare sorted multisets of values.
        np.testing.assert_allclose(
            np.sort(va[~np.isnan(va)]), np.sort(vb[~np.isnan(vb)]), atol=1e-5
        )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tree=tree_strategy())
def test_metadata_matches_execution(tree):
    plan = plan_query(tree, _SOURCES)
    declared_crs = plan.metadata.crs
    for chunk in plan.chunks():
        assert chunk.lattice.crs == declared_crs


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tree=tree_strategy(), region=region_strategy())
def test_restriction_commutes_with_itself(tree, region):
    """|R applied twice equals once (idempotence of restriction)."""
    once = collect(q.SpatialRestrict(tree, region))
    twice = collect(q.SpatialRestrict(q.SpatialRestrict(tree, region), region))
    assert sum(c.n_points for c in once) == sum(c.n_points for c in twice)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 2**16),
    region=region_strategy(),
    restriction=st.sampled_from(["spatial", "value"]),
)
def test_reorder_faults_commute_with_nonblocking_restriction(seed, region, restriction):
    """Chunk reordering commutes with non-blocking restrictions.

    A restriction that processes chunks statelessly maps any permutation
    of its input to a permutation of its output, so injecting reorder
    faults before or after it yields the same materialized image — the
    multiset of restricted chunks is invariant. (This is exactly why the
    FrameGuard may re-sort a frame's rows without changing query results.)
    """
    from repro.faults import FaultInjector, FaultSpec
    from repro.operators import SpatialRestriction, ValueRestriction

    def make_op():
        if restriction == "spatial":
            return SpatialRestriction(region)
        return ValueRestriction(200.0, 900.0)

    spec = FaultSpec(seed=seed, reorder=0.3)
    base = _SOURCES["goes.vis"]
    faults_before = FaultInjector(spec).wrap_stream(base).pipe(make_op())
    faults_after = FaultInjector(spec).wrap_stream(base.pipe(make_op()))

    def multiset(stream):
        return sorted(
            (c.t, c.row0, c.col0, c.band, c.values.tobytes()) for c in stream.chunks()
        )

    assert multiset(faults_before) == multiset(faults_after)
