"""EXPLAIN ANALYZE stack: stage statistics, provenance, calibration, SLOs.

Covers the observed-statistics layer end to end: deterministic reservoir
quantiles, per-stage ledgers accumulated by the shared plan DAG, chunk
provenance matching ``explain_dag``'s stage fingerprints exactly, cost
calibration fitting/persistence, ``DSMSServer.explain_analyze``, and
watermark/SLO breach detection under injected stall faults — plus the
zero-overhead guarantee of the no-observability fast path.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.provenance import MAX_TRACKED_SCANS, Provenance
from repro.errors import PlanError, ServerError
from repro.faults import FaultSpec, RecoveryContext, harden_catalog, recovering
from repro.geo import goes_geostationary
from repro.ingest import GOESImager, SyntheticEarth, western_us_sector
from repro.obs.registry import ObservabilityError
from repro.obs.slo import SLOMonitor, SLOPolicy
from repro.obs.stats import Reservoir, format_lineage, lineage
from repro.operators import AdaptiveLoadShedder
from repro.plan import canonicalize, estimate_plan
from repro.query import CalibrationProfile, CalibrationSample, optimize, parse_query
from repro.server import DSMSServer, StreamCatalog

from tests.conftest import DAY_T0, sector_subbox

Q_VRANGE = "vrange(reflectance(goes.vis), 0.0, 0.4)"
Q_STRETCH = "stretch(reflectance(goes.vis), 'linear')"


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable_metrics()
    obs.disable_tracing()
    obs.disable_stats()
    obs.disable_frame_tracing()
    obs.get_registry().reset()
    yield
    obs.disable_metrics()
    obs.disable_tracing()
    obs.disable_stats()
    obs.get_registry().reset()


def run_shared(catalog):
    """Two queries sharing the reflectance prefix, observed with stats."""
    with obs.observe(stats=True) as ob:
        server = DSMSServer(catalog)
        s1 = server.register(Q_VRANGE, encode_png=False)
        s2 = server.register(Q_STRETCH, encode_png=False)
        server.run()
    return server, (s1, s2), ob.stats


class TestReservoir:
    def test_deterministic_for_same_seed(self):
        a, b = Reservoir(capacity=16, seed="stage-fp"), Reservoir(capacity=16, seed="stage-fp")
        for i in range(1000):
            a.add(i % 97)
            b.add(i % 97)
        assert a.quantile(0.5) == b.quantile(0.5)
        assert a.quantile(0.99) == b.quantile(0.99)

    def test_linear_interpolation_exact_when_unsampled(self):
        r = Reservoir(capacity=128)
        for v in range(101):  # 0..100, capacity not exceeded
            r.add(v)
        assert r.quantile(0.0) == 0.0
        assert r.quantile(0.5) == 50.0
        assert r.quantile(1.0) == 100.0
        assert r.quantile(0.995) == pytest.approx(99.5)

    def test_capacity_bound_and_counters(self):
        r = Reservoir(capacity=8, seed=1)
        for v in range(1000):
            r.add(v)
        assert len(r) == 8
        assert r.seen == 1000

    def test_empty_and_invalid(self):
        r = Reservoir(capacity=4)
        assert r.quantile(0.5) is None
        with pytest.raises(ObservabilityError):
            r.quantile(1.5)
        with pytest.raises(ObservabilityError):
            Reservoir(capacity=0)


class TestProvenance:
    def test_scan_with_stage_merge(self):
        p = Provenance.scan("goes.vis", 3).with_stage("aaaa")
        q = Provenance.scan("goes.nir", 1).with_stage("bbbb")
        merged = p.merge(q).with_stage("cccc")
        assert merged.stream_ids == frozenset({"goes.vis", "goes.nir"})
        assert merged.scan_ordinals("goes.vis") == (3,)
        assert merged.stages == frozenset({"aaaa", "bbbb", "cccc"})
        # with_stage is idempotent and merge(None) is identity.
        assert merged.with_stage("cccc") is merged
        assert p.merge(None) is p

    def test_scan_cap_keeps_newest_ordinals(self):
        p = Provenance.scan("s", 0)
        for i in range(1, MAX_TRACKED_SCANS + 10):
            p = p.merge(Provenance.scan("s", i))
        assert len(p.sources) == MAX_TRACKED_SCANS
        assert p.dropped_sources == 10
        kept = p.scan_ordinals("s")
        assert kept[-1] == MAX_TRACKED_SCANS + 9  # newest survive
        assert "+" in p.describe()  # dropped count surfaced


class TestStageStatsViaDAG:
    def test_ledgers_accumulate_per_stage(self, catalog):
        server, _, collector = run_shared(catalog)
        assert len(collector) == len(server.plan_dag.order)
        for st in collector:
            assert st.calls > 0 and st.chunks_in > 0
            assert st.wall_s > 0
            assert st.p50 is not None and st.p50 <= st.p99
            sel = st.selectivity
            assert sel is None or sel >= 0.0

    def test_provenance_lists_exactly_the_query_stages(self, catalog):
        server, sessions, _ = run_shared(catalog)
        for session in sessions:
            rid = server._session_to_reg[session.session_id]
            expected = server.plan_dag.stage_fingerprints(rid)
            assert session.frames, "query delivered no frames"
            for frame in session.frames:
                prov = lineage(frame)
                assert prov is not None
                assert set(prov.stages) == expected
                assert prov.stream_ids == frozenset({"goes.vis"})

    def test_shared_prefix_appears_in_both_queries(self, catalog):
        server, sessions, _ = run_shared(catalog)
        fps = [
            server.plan_dag.stage_fingerprints(
                server._session_to_reg[s.session_id]
            )
            for s in sessions
        ]
        shared = fps[0] & fps[1]
        assert shared, "overlapping queries must share prefix stages"
        assert fps[0] != fps[1]  # but each keeps a private suffix
        assert server.plan_dag.stages_shared > 0

    def test_format_lineage_resolves_fingerprints(self, catalog):
        server, sessions, _ = run_shared(catalog)
        text = format_lineage(sessions[0].frames[-1], dag=server.plan_dag)
        assert "goes.vis" in text
        assert "ValueMap" in text or "reflectance" in text

    def test_no_provenance_without_stats(self, catalog):
        server = DSMSServer(catalog)
        session = server.register(Q_VRANGE, encode_png=False)
        server.run()
        assert session.frames
        assert all(lineage(f) is None for f in session.frames)


class TestCalibration:
    def test_fit_is_the_per_kind_ratio_estimator(self):
        samples = [
            CalibrationSample("A", 100.0, 1e-4),
            CalibrationSample("A", 300.0, 3e-4),
            CalibrationSample("B", 50.0, 1e-3),
        ]
        profile = CalibrationProfile.fit(samples)
        assert profile.coefficient("A") == pytest.approx(1e-6)
        assert profile.coefficient("B") == pytest.approx(2e-5)
        assert profile.seconds("A", 200.0) == pytest.approx(2e-4)
        # Unknown kinds fall back to the pooled default.
        pooled = (1e-4 + 3e-4 + 1e-3) / (100.0 + 300.0 + 50.0)
        assert profile.coefficient("Z") == pytest.approx(pooled)
        assert profile.n_samples == 3

    def test_json_roundtrip_and_validation(self, tmp_path):
        profile = CalibrationProfile.fit([CalibrationSample("A", 10.0, 1e-4)])
        path = tmp_path / "cal.json"
        profile.save(path)
        loaded = CalibrationProfile.load(path)
        assert dict(loaded.coefficients) == dict(profile.coefficients)
        assert loaded.default_coefficient == profile.default_coefficient
        with pytest.raises(PlanError):
            CalibrationProfile.from_json("not json {")
        with pytest.raises(PlanError):
            CalibrationProfile.from_json("{}")

    def test_kind_fingerprint_roundtrip_and_tamper_detection(self):
        profile = CalibrationProfile.fit(
            [CalibrationSample("A", 10.0, 1e-4), CalibrationSample("B", 20.0, 1e-4)]
        )
        assert profile.kinds == ("A", "B")
        loaded = CalibrationProfile.from_json(profile.to_json())
        assert loaded.kinds == profile.kinds
        assert loaded.kind_fingerprint == profile.kind_fingerprint
        # The fingerprint identifies the kind *set*, not the coefficients.
        refit = CalibrationProfile.fit(
            [CalibrationSample("B", 5.0, 1e-5), CalibrationSample("A", 1.0, 1e-5)]
        )
        assert refit.kind_fingerprint == profile.kind_fingerprint
        other = CalibrationProfile.fit([CalibrationSample("A", 10.0, 1e-4)])
        assert other.kind_fingerprint != profile.kind_fingerprint
        # A hand-edited kind list no longer matches the recorded digest.
        tampered = profile.to_json().replace('"A"', '"C"')
        with pytest.raises(PlanError, match="fingerprint"):
            CalibrationProfile.from_json(tampered)

    def test_stale_kinds_partitions_the_divergence(self):
        profile = CalibrationProfile.fit(
            [CalibrationSample("A", 1.0, 1e-5), CalibrationSample("B", 1.0, 1e-5)]
        )
        unfitted, unused = profile.stale_kinds({"A", "C"})
        assert unfitted == ("C",) and unused == ("B",)
        assert profile.stale_kinds({"A", "B"}) == ((), ())
        # A legacy profile with no recorded kinds can never be stale.
        assert CalibrationProfile.uncalibrated().stale_kinds({"A"}) == (("A",), ())
        assert CalibrationProfile.uncalibrated().kinds == ()

    def test_estimate_plan_prices_seconds_only_when_calibrated(self, catalog):
        crs_of = dict(catalog.crs_of())
        node = optimize(parse_query(Q_STRETCH), crs_of).node
        plan = canonicalize(node, crs_of=crs_of)
        profiles = catalog.profiles()
        bare, _ = estimate_plan(plan, profiles)
        assert bare.seconds is None
        est, _ = estimate_plan(
            plan, profiles, calibration=CalibrationProfile.uncalibrated()
        )
        assert est.seconds is not None and est.seconds > 0

    def test_fitted_profile_beats_seed_estimates(self, catalog):
        server, _, collector = run_shared(catalog)
        samples = server.calibration_samples(collector)
        assert samples
        fitted = CalibrationProfile.fit(samples)
        seed = CalibrationProfile.uncalibrated()

        def err(profile):
            rel = [
                abs(profile.seconds(s.kind, s.work_units) - s.wall_s) / s.wall_s
                for s in samples
            ]
            return sum(rel) / len(rel)

        assert err(fitted) < err(seed)

    def test_samples_require_a_collector(self, catalog):
        server = DSMSServer(catalog)
        server.register(Q_VRANGE, encode_png=False)
        server.run()
        with pytest.raises(ServerError, match="stats"):
            server.calibration_samples()


class TestExplainAnalyze:
    def test_requires_observed_statistics(self, catalog):
        server = DSMSServer(catalog)
        server.register(Q_VRANGE, encode_png=False)
        server.run()
        with pytest.raises(ServerError, match="observe"):
            server.explain_analyze()

    def test_renders_observed_and_estimated_cost_per_stage(self, catalog):
        server, _, collector = run_shared(catalog)
        text = server.explain_analyze(collector=collector)
        assert "EXPLAIN ANALYZE" in text
        assert "2 queries" in text
        for stage in server.plan_dag.order:
            assert f"#{stage.node.fingerprint}" in text
        assert "observed:" in text and "rows" in text and "bytes" in text
        assert "estimated:" in text and "est/obs ratio" in text
        assert "summary: mean relative cost-estimation error" in text

    def test_flagging_and_ratio_validation(self, catalog):
        server, _, collector = run_shared(catalog)
        with pytest.raises(ServerError):
            server.explain_analyze(collector=collector, flag_ratio=1.0)
        # An absurd coefficient drives every ratio out of tolerance.
        wild = CalibrationProfile.uncalibrated(default=10.0)
        text = server.explain_analyze(collector=collector, calibration=wild)
        assert "** off by more than 3x **" in text

    def test_flags_stale_calibration_profile(self, catalog):
        server, _, collector = run_shared(catalog)
        # A profile fitted over a different operator mix is stale for
        # this DAG: it names its fingerprint and says how the sets differ.
        stale = CalibrationProfile.fit([CalibrationSample("Mosaic", 100.0, 1e-3)])
        text = server.explain_analyze(collector=collector, calibration=stale)
        assert "stale calibration profile" in text
        assert stale.kind_fingerprint in text
        assert "re-fit with --fit-calibration" in text
        # A profile fitted from this very run matches: no warning. A
        # legacy profile with no recorded kinds is never flagged either.
        fresh = CalibrationProfile.fit(server.calibration_samples(collector))
        text = server.explain_analyze(collector=collector, calibration=fresh)
        assert "stale calibration profile" not in text
        legacy = CalibrationProfile.uncalibrated()
        text = server.explain_analyze(collector=collector, calibration=legacy)
        assert "stale calibration profile" not in text


def make_stall_server():
    """A tiny hardened catalog whose source stalls deterministically."""
    crs = goes_geostationary(-135.0)
    imager = GOESImager(
        scene=SyntheticEarth(seed=5),
        sector_lattice=western_us_sector(crs, width=16, height=8),
        n_frames=3,
        t0=DAY_T0,
    )
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    spec = FaultSpec(seed=202, stall=0.5, stall_seconds=30.0)
    ctx = RecoveryContext(stall_threshold_s=10.0)
    hardened, injector, ctx = harden_catalog(catalog, spec, context=ctx)
    breaches = []
    shedder = AdaptiveLoadShedder(points_per_frame_budget=16 * 8 * 2.0)
    server = DSMSServer(
        hardened,
        ingest_shedder=shedder,
        recovery=ctx,
        slo=SLOPolicy(max_lag_s=20.0, callback=breaches.append),
    )
    server.register("reflectance(goes.vis)", encode_png=False)
    return server, ctx, injector, shedder, breaches


class TestSLO:
    def test_monitor_rising_edge_and_hysteresis(self):
        fired = []
        monitor = SLOMonitor(SLOPolicy(max_lag_s=10.0, callback=fired.append, relax_after=2))
        assert monitor.observe(1, watermark=0.0, stream_t=5.0) is None
        breach = monitor.observe(1, watermark=0.0, stream_t=50.0)
        assert breach is not None and breach.kind == "event" and breach.lag_s == 50.0
        # Still inside the same episode: no second callback.
        assert monitor.observe(1, watermark=0.0, stream_t=60.0) is None
        assert len(fired) == 1 and monitor.is_breached(1)
        # Two healthy observations re-arm, the next breach fires again.
        monitor.observe(1, watermark=100.0, stream_t=101.0)
        monitor.observe(1, watermark=100.0, stream_t=102.0)
        assert not monitor.is_breached(1)
        assert monitor.observe(1, watermark=100.0, stream_t=200.0) is not None
        assert monitor.breach_count(1) == 2

    def test_clock_lag_breaches_without_watermark(self):
        monitor = SLOMonitor(SLOPolicy(max_lag_s=10.0))
        breach = monitor.observe(7, clock_lag_s=30.0)
        assert breach is not None and breach.kind == "clock"
        assert monitor.watermark(7) is None

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SLOMonitor(SLOPolicy(max_lag_s=0.0))

    def test_stall_fault_breaches_deterministically(self):
        def run_once():
            server, ctx, injector, shedder, breaches = make_stall_server()
            with recovering(ctx):
                server.run()
            assert injector.counts["stall"] > 0
            return breaches, shedder, server

        breaches_a, shedder, server = run_once()
        assert breaches_a, "stalls past the SLO must surface as breaches"
        assert server.slo_monitor.breach_count() == len(breaches_a)
        # The breach edge drove the same valve the stall detector uses.
        assert shedder.escalations > 0
        # Byte-for-byte reproducible under the seeded SimClock.
        breaches_b, _, _ = run_once()
        assert [(b.query, b.kind, b.lag_s) for b in breaches_a] == [
            (b.query, b.kind, b.lag_s) for b in breaches_b
        ]

    def test_slo_metrics_published(self):
        with obs.observe() as ob:
            server, ctx, _, _, _ = make_stall_server()
            with recovering(ctx):
                server.run()
        names = {snap["name"] for snap in ob.registry.snapshot()}
        assert "repro_slo_lag_seconds" in names
        assert "repro_slo_breached" in names
        assert "repro_slo_breaches_total" in names
        assert "repro_slo_watermark_seconds" in names


class TestFastPathOverhead:
    def test_no_timing_calls_when_observability_off(self, catalog, monkeypatch):
        """The no-tracer/no-stats path must never touch perf_counter.

        The telemetry timeline rides the same zero-cost contract: with no
        MetricStore or EventJournal installed the run must never call into
        them either.
        """

        def forbidden():
            raise AssertionError("perf_counter called on the fast path")

        def forbidden_timeline(*args, **kwargs):
            raise AssertionError("timeline touched with no store/journal installed")

        monkeypatch.setattr("repro.plan.stages.perf_counter", forbidden)
        monkeypatch.setattr("repro.engine.pipeline.perf_counter", forbidden)
        monkeypatch.setattr("repro.obs.trace.perf_counter", forbidden)
        monkeypatch.setattr("repro.operators.delivery.perf_counter", forbidden)
        monkeypatch.setattr(
            "repro.obs.timeline.MetricStore.maybe_sample", forbidden_timeline
        )
        monkeypatch.setattr("repro.obs.timeline.MetricStore.sample", forbidden_timeline)
        monkeypatch.setattr("repro.obs.timeline.EventJournal.append", forbidden_timeline)
        monkeypatch.setattr(
            "repro.obs.timeline.EventJournal.set_time", forbidden_timeline
        )
        server = DSMSServer(catalog)
        session = server.register(Q_VRANGE, encode_png=False)
        server.run()
        assert session.frames  # the run completed untimed

    def test_timed_path_does_use_perf_counter(self, catalog, monkeypatch):
        """Sanity check that the guard above actually guards something."""

        def forbidden():
            raise AssertionError("timed")

        monkeypatch.setattr("repro.plan.stages.perf_counter", forbidden)
        with obs.observe(stats=True):
            server = DSMSServer(catalog)
            server.register(Q_VRANGE, encode_png=False)
            with pytest.raises(AssertionError, match="timed"):
                server.run()

    @staticmethod
    def _per_point_query(small_imager):
        box = sector_subbox(small_imager, 0.1, 0.1, 0.9, 0.9)
        return (
            "reproject(within(coarsen(stretch(reflectance(goes.vis), 'linear'), 2), "
            f"bbox({box.xmin!r}, {box.ymin!r}, {box.xmax!r}, {box.ymax!r}, "
            "crs='geos:-135')), 'utm:10')"
        )

    def test_columnar_mode_makes_no_per_point_callbacks(
        self, catalog, small_imager, monkeypatch
    ):
        """Columnar kernels never fall back to per-chunk Python derivation.

        ``GridChunk.subwindow`` / ``with_values`` are the oracle's per-row
        and per-chunk callbacks; the columnar fast path must construct its
        outputs from whole-buffer operations only.
        """
        from repro.core import GridChunk

        def forbidden(self, *args, **kwargs):
            raise AssertionError("per-point callback on the columnar path")

        monkeypatch.setattr(GridChunk, "subwindow", forbidden)
        monkeypatch.setattr(GridChunk, "with_values", forbidden)
        server = DSMSServer(catalog, columnar=True)
        session = server.register(
            self._per_point_query(small_imager), encode_png=False
        )
        server.run()
        assert session.frames  # the run completed without the oracle hooks

    def test_per_point_mode_does_use_the_callbacks(
        self, catalog, small_imager, monkeypatch
    ):
        """Sanity check: the same pipeline trips the guard in oracle mode."""
        from repro.core import GridChunk

        def forbidden(self, *args, **kwargs):
            raise AssertionError("per-point")

        monkeypatch.setattr(GridChunk, "subwindow", forbidden)
        monkeypatch.setattr(GridChunk, "with_values", forbidden)
        server = DSMSServer(catalog, columnar=False)
        server.register(self._per_point_query(small_imager), encode_png=False)
        with pytest.raises(AssertionError, match="per-point"):
            server.run()


class TestGaugeSnapshotGap:
    def test_zero_delivery_session_still_exports_gauges(self, catalog, small_imager):
        """Regression: sessions that never deliver must still appear in the
        snapshot with zero-valued gauges, not vanish from lag dashboards."""
        box = sector_subbox(small_imager, 1.5, 1.5, 1.75, 1.75)  # fully outside
        query = (
            f"within(reflectance(goes.vis), bbox({box.xmin!r}, {box.ymin!r}, "
            f"{box.xmax!r}, {box.ymax!r}, crs='geos:-135'))"
        )
        with obs.observe() as ob:
            server = DSMSServer(catalog)
            session = server.register(query, encode_png=False)
            server.run()
        assert not session.frames  # nothing delivered
        snaps = {
            (s["name"], s["labels"].get("session")): s
            for s in ob.registry.snapshot()
        }
        sid = str(session.session_id)
        pending = snaps.get(("dsms_session_pending_frames", sid))
        assert pending is not None, "gauge missing from the snapshot"
        assert pending["value"] == 0.0
        lag = snaps.get(("dsms_delivery_lag_seconds", sid))
        assert lag is not None and lag["count"] == 0
