"""CRS semantics: equality, conversion routing, mismatch enforcement."""

import numpy as np
import pytest

from repro.errors import CRSMismatchError
from repro.geo import (
    LATLON,
    goes_geostationary,
    lambert_conic,
    latlon,
    mercator,
    plate_carree,
    sinusoidal,
    transform_points,
    utm,
)


class TestCRSIdentity:
    def test_latlon_is_geographic(self):
        assert LATLON.is_geographic
        assert LATLON.units == "degree"

    def test_projected_units(self):
        assert utm(10).units == "meter"
        assert not utm(10).is_geographic

    def test_equality_semantics(self):
        assert latlon() == LATLON
        assert utm(10) == utm(10)
        assert utm(10) != utm(10, north=False)
        assert utm(10) != utm(11)
        assert mercator() != plate_carree()
        assert goes_geostationary(-135.0) != goes_geostationary(-75.0)

    def test_hashable_in_sets(self):
        assert len({utm(10), utm(10), utm(11), LATLON}) == 3

    def test_require_same_raises(self):
        with pytest.raises(CRSMismatchError):
            utm(10).require_same(LATLON, "test")

    def test_require_same_passes(self):
        utm(10).require_same(utm(10))


class TestConversion:
    def test_geographic_passthrough(self):
        lon, lat = LATLON.to_lonlat(-120.0, 40.0)
        assert float(lon) == -120.0 and float(lat) == 40.0
        x, y = LATLON.from_lonlat(-120.0, 40.0)
        assert float(x) == -120.0 and float(y) == 40.0

    def test_projected_roundtrip(self):
        crs = utm(10)
        x, y = crs.from_lonlat(-121.5, 38.0)
        lon, lat = crs.to_lonlat(x, y)
        assert float(lon) == pytest.approx(-121.5, abs=1e-9)
        assert float(lat) == pytest.approx(38.0, abs=1e-9)

    def test_transform_points_same_crs_is_identity(self):
        x = np.array([1.0, 2.0])
        y = np.array([3.0, 4.0])
        tx, ty = transform_points(utm(10), utm(10), x, y)
        np.testing.assert_array_equal(tx, x)
        np.testing.assert_array_equal(ty, y)

    def test_transform_points_cross_crs(self):
        src, dst = LATLON, utm(10)
        tx, ty = transform_points(src, dst, -121.74, 38.54)
        assert float(tx) == pytest.approx(609_600, abs=300)
        # Back again through the other direction.
        lon, lat = transform_points(dst, src, tx, ty)
        assert float(lon) == pytest.approx(-121.74, abs=1e-8)
        assert float(lat) == pytest.approx(38.54, abs=1e-8)

    def test_transform_chain_consistency(self):
        """latlon -> geos -> utm equals latlon -> utm."""
        geos = goes_geostationary(-135.0)
        u10 = utm(10)
        lon, lat = np.array([-122.0, -120.5]), np.array([37.0, 39.0])
        gx, gy = transform_points(LATLON, geos, lon, lat)
        x_via, y_via = transform_points(geos, u10, gx, gy)
        x_direct, y_direct = transform_points(LATLON, u10, lon, lat)
        np.testing.assert_allclose(x_via, x_direct, atol=1e-5)
        np.testing.assert_allclose(y_via, y_direct, atol=1e-5)

    def test_out_of_domain_propagates_nan(self):
        geos = goes_geostationary(-135.0)
        x, y = transform_points(LATLON, geos, 60.0, 0.0)
        assert np.isnan(float(x)) and np.isnan(float(y))


class TestFactories:
    @pytest.mark.parametrize(
        "factory",
        [latlon, plate_carree, mercator, sinusoidal, lambert_conic, goes_geostationary],
    )
    def test_factory_builds(self, factory):
        crs = factory()
        assert crs.name
        # Every CRS round-trips its own sub-satellite-ish test point.
        lon, lat = -100.0, 35.0
        x, y = crs.from_lonlat(lon, lat)
        lon2, lat2 = crs.to_lonlat(x, y)
        assert float(lon2) == pytest.approx(lon, abs=1e-6)
        assert float(lat2) == pytest.approx(lat, abs=1e-6)
