"""Synthetic Earth scene: determinism and physical plausibility."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.ingest import Hotspot, SyntheticEarth, ValueNoise2D

DAY = 72_000.0  # mid-day over the western US
NIGHT = 30_000.0


@pytest.fixture(scope="module")
def scene():
    return SyntheticEarth(seed=7)


class TestValueNoise:
    def test_range(self):
        noise = ValueNoise2D(1)
        rng = np.random.default_rng(0)
        x = rng.uniform(-100, 100, 1000)
        y = rng.uniform(-100, 100, 1000)
        v = noise.noise(x, y)
        assert v.min() >= 0.0 and v.max() <= 1.0

    def test_deterministic(self):
        a = ValueNoise2D(5).noise(np.array([1.5, 2.5]), np.array([3.5, 4.5]))
        b = ValueNoise2D(5).noise(np.array([1.5, 2.5]), np.array([3.5, 4.5]))
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_field(self):
        x = np.linspace(0, 10, 50)
        a = ValueNoise2D(1).noise(x, x)
        b = ValueNoise2D(2).noise(x, x)
        assert not np.allclose(a, b)

    def test_continuity(self):
        """Adjacent samples differ by much less than the field's range."""
        noise = ValueNoise2D(3)
        x = np.linspace(0, 5, 2001)
        v = noise.noise(x, np.zeros_like(x))
        assert np.abs(np.diff(v)).max() < 0.02

    def test_fbm_range(self):
        noise = ValueNoise2D(4)
        v = noise.fbm(np.linspace(0, 30, 500), np.linspace(0, 30, 500), octaves=5)
        assert v.min() >= 0.0 and v.max() <= 1.0


class TestSceneFields:
    def test_water_vegetation_disjoint(self, scene):
        rng = np.random.default_rng(1)
        lon = rng.uniform(-130, -100, 2000)
        lat = rng.uniform(25, 50, 2000)
        veg = scene.vegetation(lon, lat)
        water = scene.water_mask(lon, lat)
        assert (veg[water] == 0.0).all()

    def test_scene_has_both_land_and_water(self, scene):
        rng = np.random.default_rng(2)
        lon = rng.uniform(-180, 180, 5000)
        lat = rng.uniform(-60, 60, 5000)
        water = scene.water_mask(lon, lat)
        assert 0.1 < water.mean() < 0.9

    def test_reflectance_band_validation(self, scene):
        with pytest.raises(StreamError):
            scene.reflectance("swir", np.array([0.0]), np.array([0.0]), 0.0)

    def test_vis_nir_in_unit_range(self, scene):
        rng = np.random.default_rng(3)
        lon = rng.uniform(-130, -100, 500)
        lat = rng.uniform(25, 50, 500)
        for band in ("vis", "nir"):
            v = scene.reflectance(band, lon, lat, DAY)
            assert v.min() >= 0.0 and v.max() <= 1.0

    def test_night_darker_than_day(self, scene):
        lon = np.full(100, -120.0)
        lat = np.linspace(30, 45, 100)
        day = scene.reflectance("vis", lon, lat, DAY)
        night = scene.reflectance("vis", lon, lat, NIGHT)
        assert day.mean() > night.mean() * 2

    def test_ndvi_separates_vegetation_from_water(self, scene):
        """The headline product: vegetated land has higher NDVI than water."""
        rng = np.random.default_rng(4)
        lon = rng.uniform(-130, -100, 4000)
        lat = rng.uniform(25, 50, 4000)
        vis = scene.reflectance("vis", lon, lat, DAY)
        nir = scene.reflectance("nir", lon, lat, DAY)
        ndvi = (nir - vis) / (nir + vis + 1e-12)
        veg = scene.vegetation(lon, lat)
        water = scene.water_mask(lon, lat)
        cloud = scene.cloud_cover(lon, lat, DAY)
        clear = cloud < 0.1
        veg_ndvi = ndvi[clear & (veg > 0.35)]
        water_ndvi = ndvi[clear & water]
        assert veg_ndvi.size > 10 and water_ndvi.size > 10
        assert veg_ndvi.mean() > 0.25
        assert water_ndvi.mean() < 0.0

    def test_tir_is_brightness_temperature(self, scene):
        rng = np.random.default_rng(5)
        lon = rng.uniform(-130, -100, 500)
        lat = rng.uniform(25, 50, 500)
        t = scene.reflectance("tir", lon, lat, DAY)
        assert 180.0 < t.min() and t.max() < 340.0

    def test_clouds_move_with_time(self, scene):
        lon = np.linspace(-130, -100, 200)
        lat = np.full(200, 40.0)
        c0 = scene.cloud_cover(lon, lat, 0.0)
        c1 = scene.cloud_cover(lon, lat, 6 * 3600.0)
        assert not np.allclose(c0, c1)


class TestHotspots:
    def test_hotspot_raises_local_temperature(self):
        hs = Hotspot(lon=-121.0, lat=39.0, t_start=0.0, t_end=1e6, radius_deg=0.2)
        hot_scene = SyntheticEarth(seed=7, hotspots=(hs,))
        cold_scene = SyntheticEarth(seed=7)
        t_hot = hot_scene.reflectance("tir", np.array([-121.0]), np.array([39.0]), DAY)
        t_cold = cold_scene.reflectance("tir", np.array([-121.0]), np.array([39.0]), DAY)
        cloud = hot_scene.cloud_cover(np.array([-121.0]), np.array([39.0]), DAY)
        if cloud[0] <= 0.5:  # hotspot visible only through clear sky
            assert float(t_hot[0]) > float(t_cold[0]) + 50.0

    def test_hotspot_inactive_outside_window(self):
        hs = Hotspot(lon=-121.0, lat=39.0, t_start=1000.0, t_end=2000.0)
        s = SyntheticEarth(seed=7, hotspots=(hs,))
        base = SyntheticEarth(seed=7)
        t_before = s.reflectance("tir", np.array([-121.0]), np.array([39.0]), 0.0)
        t_base = base.reflectance("tir", np.array([-121.0]), np.array([39.0]), 0.0)
        np.testing.assert_allclose(t_before, t_base)

    def test_hotspot_local(self):
        hs = Hotspot(lon=-121.0, lat=39.0, t_start=0.0, t_end=1e6, radius_deg=0.1)
        s = SyntheticEarth(seed=7, hotspots=(hs,))
        base = SyntheticEarth(seed=7)
        far = s.reflectance("tir", np.array([-110.0]), np.array([30.0]), DAY)
        far_base = base.reflectance("tir", np.array([-110.0]), np.array([30.0]), DAY)
        np.testing.assert_allclose(far, far_base)


class TestDigitize:
    def test_counts_within_bits(self, scene):
        lon = np.linspace(-130, -100, 300)
        lat = np.linspace(25, 50, 300)
        for bits in (8, 10, 16):
            counts = scene.digitize("vis", lon, lat, DAY, bits=bits)
            assert counts.dtype == np.uint16
            assert counts.max() <= (1 << bits) - 1

    def test_deterministic(self, scene):
        lon = np.linspace(-130, -100, 50)
        lat = np.linspace(25, 50, 50)
        a = scene.digitize("vis", lon, lat, DAY)
        b = scene.digitize("vis", lon, lat, DAY)
        np.testing.assert_array_equal(a, b)

    def test_offearth_nan_is_zero(self, scene):
        counts = scene.digitize("vis", np.array([np.nan]), np.array([np.nan]), DAY)
        assert counts[0] == 0

    def test_tir_counts_inverted(self, scene):
        """Colder scenes yield higher IR counts (GVAR convention)."""
        hs = Hotspot(lon=-121.0, lat=39.0, t_start=0.0, t_end=1e9, radius_deg=0.3, peak_kelvin=420.0)
        hot = SyntheticEarth(seed=7, hotspots=(hs,))
        c_hot = hot.digitize("tir", np.array([-121.0]), np.array([39.0]), DAY)
        c_base = scene.digitize("tir", np.array([-121.0]), np.array([39.0]), DAY)
        cloud = scene.cloud_cover(np.array([-121.0]), np.array([39.0]), DAY)
        if cloud[0] <= 0.5:
            assert int(c_hot[0]) < int(c_base[0])


class TestStaticFields:
    def test_statics_path_identical_to_direct(self, scene):
        """Passing precomputed statics is a pure optimization."""
        lon = np.linspace(-130, -100, 80)
        lat = np.linspace(25, 50, 80)
        statics = scene.static_fields(lon, lat)
        for band in ("vis", "nir", "tir"):
            direct = scene.reflectance(band, lon, lat, DAY)
            cached = scene.reflectance(band, lon, lat, DAY, statics=statics)
            np.testing.assert_array_equal(direct, cached)
            d_counts = scene.digitize(band, lon, lat, DAY)
            c_counts = scene.digitize(band, lon, lat, DAY, statics=statics)
            np.testing.assert_array_equal(d_counts, c_counts)

    def test_statics_contents(self, scene):
        lon = np.linspace(-130, -100, 20)
        lat = np.linspace(25, 50, 20)
        statics = scene.static_fields(lon, lat)
        assert set(statics) == {"water", "veg", "texture"}
        np.testing.assert_array_equal(statics["water"], scene.water_mask(lon, lat))
        np.testing.assert_array_equal(statics["veg"], scene.vegetation(lon, lat))
