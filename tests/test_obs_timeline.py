"""The telemetry timeline: metric store, event journal, health model.

Unit coverage drives each piece on a private registry with hand-rolled
logical clocks (no DSMS, no wall clock), then the integration half runs
seeded chaos through the full server and pins the ISSUE's acceptance
contract: the EventJournal of a seeded drill is bit-identical with and
without frame tracing installed, and journal links click through to the
flight recorder's pinned captures.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.faults import FaultSpec, SimClock, harden_catalog, recovering
from repro.geo import goes_geostationary
from repro.ingest import GOESImager, SyntheticEarth, western_us_sector
from repro.obs import EventJournal, HealthModel, HealthPolicy, MetricStore
from repro.obs.registry import MetricsRegistry, ObservabilityError
from repro.obs.timeline import (
    VERDICT_DEGRADED,
    VERDICT_HEALTHY,
    VERDICT_UNHEALTHY,
    current_journal,
    current_metric_store,
)
from repro.obs.trace import FrameTrace
from repro.server import DSMSServer, StreamCatalog

DAY_T0 = 72_000.0


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable_frame_tracing()
    yield
    obs.disable_frame_tracing()


def make_catalog() -> StreamCatalog:
    crs = goes_geostationary(-135.0)
    imager = GOESImager(
        scene=SyntheticEarth(seed=5),
        sector_lattice=western_us_sector(crs, width=16, height=8),
        n_frames=3,
        t0=DAY_T0,
    )
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    return catalog


# -- MetricStore --------------------------------------------------------------


class TestMetricStore:
    def test_cadence_gates_sampling(self):
        reg = MetricsRegistry()
        counter = reg.counter("ticks_total")
        store = MetricStore(capacity=16, cadence_s=10.0)
        taken = 0
        for i in range(50):
            counter.inc()
            taken += store.maybe_sample(float(i), reg)
        # t=0 samples, then every 10 logical seconds: 0,10,20,30,40.
        assert taken == 5
        assert store.samples_taken == 5
        points = store.series("ticks_total")
        assert [t for t, _ in points] == [0.0, 10.0, 20.0, 30.0, 40.0]
        # Counter values captured at each tick (inc'd before the sample).
        assert [v for _, v in points] == [1.0, 11.0, 21.0, 31.0, 41.0]

    def test_capacity_bounds_every_ring(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        store = MetricStore(capacity=4, cadence_s=0.0)
        for i in range(10):
            gauge.set(float(i))
            store.sample(float(i), reg)
        points = store.series("depth")
        assert len(points) == 4
        assert points == [(6.0, 6.0), (7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]
        assert store.samples_taken == 10  # evicted, not forgotten

    def test_clock_regression_resets(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        store = MetricStore(capacity=8, cadence_s=1.0)
        store.maybe_sample(100.0, reg)
        store.maybe_sample(105.0, reg)
        assert len(store.series("c")) == 2
        # A fresh run restarts the logical clock: the store resets.
        store.maybe_sample(3.0, reg)
        assert store.resets == 1
        assert [t for t, _ in store.series("c")] == [3.0]

    def test_repeat_tick_updates_in_place(self):
        """The forced end-of-run sample at the same logical t wins."""
        reg = MetricsRegistry()
        counter = reg.counter("done_total")
        store = MetricStore(capacity=8, cadence_s=0.0)
        counter.inc()
        store.sample(50.0, reg)
        counter.inc(9)
        store.sample(50.0, reg)  # same logical time: update, don't append
        points = store.series("done_total")
        assert points == [(50.0, 10.0)]
        assert store.samples_taken == 1  # in-place update is not a new tick
        times = [t for t, _ in points]
        assert times == sorted(set(times)), "tick times stay strictly monotone"

    def test_labeled_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.gauge("lag", query=1).set(2.0)
        reg.gauge("lag", query=2).set(7.0)
        store = MetricStore(capacity=8, cadence_s=0.0)
        store.sample(0.0, reg)
        assert store.series("lag", query=1) == [(0.0, 2.0)]
        assert store.series("lag", query=2) == [(0.0, 7.0)]
        assert len(store.matching("lag")) == 2

    def test_histogram_fans_out_derived_series(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency_seconds")
        store = MetricStore(capacity=8, cadence_s=0.0)
        for i, v in enumerate([0.1, 0.2, 0.3, 0.4]):
            hist.observe(v)
            store.sample(float(i), reg)
        names = {k.name for k in store.keys()}
        assert {"latency_seconds:count", "latency_seconds:sum", "latency_seconds:p99"} <= names
        counts = store.series("latency_seconds:count")
        assert [v for _, v in counts] == [1.0, 2.0, 3.0, 4.0]
        sums = store.series("latency_seconds:sum")
        assert sums[-1][1] == pytest.approx(1.0)

    def test_rollup_rate_and_distribution(self):
        reg = MetricsRegistry()
        counter = reg.counter("frames_total")
        store = MetricStore(capacity=16, cadence_s=0.0)
        for i in range(5):
            counter.inc(2)
            store.sample(float(i * 10), reg)
        roll = store.rollup("frames_total")
        assert roll is not None
        assert roll.window == 5
        assert roll.delta == 8.0  # 10 - 2
        assert roll.rate == pytest.approx(8.0 / 40.0)
        assert roll.span_s == 40.0
        assert (roll.vmin, roll.vmax) == (2.0, 10.0)
        assert roll.mean == pytest.approx(6.0)
        windowed = store.rollup("frames_total", window=2)
        assert windowed is not None
        assert windowed.window == 2
        assert windowed.delta == 2.0
        assert store.rollup("no_such_series") is None
        with pytest.raises(ObservabilityError):
            store.rollup("frames_total", window=0)

    def test_trend_rising(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("lag_seconds")
        store = MetricStore(capacity=16, cadence_s=0.0)
        for i, v in enumerate([1.0, 2.0, 4.0, 8.0]):
            gauge.set(v)
            store.sample(float(i), reg)
        assert store.trend_rising("lag_seconds", window=4)
        for i, v in enumerate([8.0, 4.0, 2.0, 1.0]):
            gauge.set(v)
            store.sample(float(10 + i), reg)
        assert not store.trend_rising("lag_seconds", window=4)
        assert not store.trend_rising("lag_seconds", window=2)  # < 3 points

    def test_to_dict_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("c", query=1).inc()
        store = MetricStore(capacity=8, cadence_s=0.0)
        store.sample(1.0, reg)
        payload = json.loads(json.dumps(store.to_dict(window=4)))
        assert payload["capacity"] == 8
        assert payload["samples_taken"] == 1
        [series] = payload["series"]
        assert series["name"] == "c"
        assert series["labels"] == {"query": "1"}
        assert series["points"] == [[1.0, 1.0]]
        assert series["rollup"]["window"] == 1

    def test_rejects_bad_configuration(self):
        with pytest.raises(ObservabilityError):
            MetricStore(capacity=0)
        with pytest.raises(ObservabilityError):
            MetricStore(cadence_s=-1.0)


# -- EventJournal -------------------------------------------------------------


class TestEventJournal:
    def test_seq_survives_eviction(self):
        journal = EventJournal(capacity=4)
        for i in range(10):
            journal.append("fault", reason=f"r{i}", t=float(i))
        assert len(journal) == 4
        assert journal.total == 10
        seqs = [e.seq for e in journal]
        assert seqs == [7, 8, 9, 10]  # strictly increasing, never reused
        assert [e.t for e in journal] == [6.0, 7.0, 8.0, 9.0]

    def test_set_time_defaults_event_timestamps(self):
        journal = EventJournal()
        journal.set_time(123.5)
        event = journal.append("slo-breach", query=1)
        assert event.t == 123.5
        explicit = journal.append("fault", t=7.0)
        assert explicit.t == 7.0

    def test_filters_and_tail(self):
        journal = EventJournal()
        journal.append("fault", reason="drop", t=1.0)
        journal.append("slo-breach", query=1, t=2.0)
        journal.append("fault", reason="stall", t=3.0)
        journal.append("slo-breach", query=2, t=4.0)
        assert [e.reason for e in journal.events(kind="fault")] == [
            "drop",
            "stall",
        ]
        assert [e.t for e in journal.events(query=2)] == [4.0]
        assert [e.seq for e in journal.events(since_seq=2)] == [3, 4]
        assert [e.seq for e in journal.tail(2)] == [3, 4]
        assert journal.counts_by_kind() == {"fault": 2, "slo-breach": 2}

    def test_schema_is_stable_and_json_ready(self):
        journal = EventJournal()
        journal.append("epoch-swap", query=3, epoch=2, reason="r", link="epoch-swap:e1->e2")
        [event] = json.loads(json.dumps(journal.to_dicts()))
        assert set(event) == {"seq", "t", "kind", "query", "epoch", "reason", "link"}

    def test_rejects_bad_capacity(self):
        with pytest.raises(ObservabilityError):
            EventJournal(capacity=0)

    @staticmethod
    def _trace(query, annotations=(), pin_reason=None):
        return FrameTrace(
            trace_id=1,
            trace_ids=(1,),
            query=query,
            stream_id="goes.vis",
            frame_t=None,
            band=None,
            shape=None,
            hops=[],
            annotations=tuple(annotations),
            pinned=True,
            pin_reason=pin_reason,
        )

    def test_captures_links_into_the_flight_recorder(self):
        from repro.obs.trace import FlightRecorder

        recorder = FlightRecorder()
        hit = self._trace(1, annotations=("fault:drop:attempt=2",))
        other_kind = self._trace(1, pin_reason="fault:stall")
        other_query = self._trace(2, annotations=("fault:drop",))
        for trace in (hit, other_kind, other_query):
            recorder.pin(trace)
        journal = EventJournal()
        event = journal.append("fault", query=1, link="fault:drop", t=1.0)
        # Prefix match against annotations, filtered to the event's query.
        assert journal.captures(event, recorder) == [hit]
        # Pin reasons match too.
        stall = journal.append("fault", query=1, link="fault:stall", t=2.0)
        assert journal.captures(stall, recorder) == [other_kind]
        # No link, no captures.
        bare = journal.append("shed-relax", t=3.0)
        assert journal.captures(bare, recorder) == []


# -- HealthModel --------------------------------------------------------------


class TestHealthModel:
    def test_query_verdicts(self):
        model = HealthModel()
        verdict, reasons = model.query_verdict(breached=False, lag_s=1.0, max_lag_s=60.0)
        assert (verdict, reasons) == (VERDICT_HEALTHY, ())
        verdict, reasons = model.query_verdict(breached=False, lag_s=45.0, max_lag_s=60.0)
        assert verdict == VERDICT_DEGRADED
        assert "above 50%" in reasons[0]
        verdict, reasons = model.query_verdict(
            breached=True, lag_s=90.0, max_lag_s=60.0, breaches=3
        )
        assert verdict == VERDICT_UNHEALTHY
        assert "SLO breach active" in reasons[0]
        assert "3 SLO breach(es)" in reasons[1]

    def test_rising_lag_degrades_even_under_budget(self):
        model = HealthModel()
        verdict, reasons = model.query_verdict(
            breached=False, lag_s=5.0, max_lag_s=60.0, lag_rising=True
        )
        assert verdict == VERDICT_DEGRADED
        assert any("rising" in r for r in reasons)

    def test_server_verdict_folds_global_signals(self):
        model = HealthModel(HealthPolicy(dead_letter_unhealthy=4))
        verdict, _ = model.server_verdict([VERDICT_HEALTHY, VERDICT_HEALTHY])
        assert verdict == VERDICT_HEALTHY
        # Worst query wins.
        verdict, _ = model.server_verdict([VERDICT_HEALTHY, VERDICT_UNHEALTHY])
        assert verdict == VERDICT_UNHEALTHY
        # A single dead letter degrades; the threshold goes unhealthy.
        verdict, reasons = model.server_verdict([VERDICT_HEALTHY], dead_letters=1)
        assert verdict == VERDICT_DEGRADED
        verdict, reasons = model.server_verdict([VERDICT_HEALTHY], dead_letters=4)
        assert verdict == VERDICT_UNHEALTHY
        assert ">= 4" in reasons[0]
        # Shed pressure and epoch churn degrade with explained reasons.
        verdict, reasons = model.server_verdict([VERDICT_HEALTHY], shed_pressure=2.0)
        assert verdict == VERDICT_DEGRADED
        assert "shed pressure" in reasons[0]
        verdict, reasons = model.server_verdict([VERDICT_HEALTHY], recent_swaps=5)
        assert verdict == VERDICT_DEGRADED
        assert "epoch churn" in reasons[0]

    def test_assess_on_a_live_server(self):
        with obs.observe(store=MetricStore(cadence_s=30.0), journal=True):
            server = DSMSServer(make_catalog())
            server.register("reflectance(goes.vis)", encode_png=False)
            server.run()
            report = HealthModel().assess(server)
        assert report.verdict in (VERDICT_HEALTHY, VERDICT_DEGRADED, VERDICT_UNHEALTHY)
        assert len(report.queries) == 1
        [query] = report.queries
        assert query.query == 1
        assert query.epoch >= 1
        payload = json.loads(json.dumps(report.to_dict()))
        assert set(payload) >= {"verdict", "reasons", "queries", "at", "dead_letters"}


# -- installation & the observe() context -------------------------------------


class TestInstallation:
    def test_observe_installs_and_restores(self):
        assert current_metric_store() is None
        assert current_journal() is None
        store = MetricStore(capacity=8)
        with obs.observe(store=store, journal=True) as ob:
            assert current_metric_store() is store
            assert ob.store is store
            assert current_journal() is ob.journal
            assert isinstance(ob.journal, EventJournal)
        assert current_metric_store() is None
        assert current_journal() is None

    def test_dsms_run_populates_store_and_journal(self):
        with obs.observe(store=MetricStore(cadence_s=30.0), journal=True) as ob:
            server = DSMSServer(make_catalog())
            session = server.register("reflectance(goes.vis)", encode_png=False)
            server.run()
        assert session.frames
        assert ob.store.samples_taken > 0
        assert len(ob.store) > 0, "the run must sample live registry metrics"
        # The run's plan install lands in the journal with the query id.
        installs = ob.journal.events(kind="epoch-install")
        assert installs and installs[0].query == 1
        # Every journal timestamp is logical stream time, inside the scan.
        assert all(e.t >= DAY_T0 or e.t == 0.0 for e in ob.journal)


# -- seeded chaos: the determinism acceptance test ----------------------------


def run_chaos_journal(seed: int, traced: bool) -> tuple[list[dict], object]:
    """One hardened run; returns the journal's serialized events."""
    spec = FaultSpec.default(seed=seed)
    with obs.observe(journal=True, frame_trace=traced) as ob:
        hardened, injector, ctx = harden_catalog(make_catalog(), spec)
        server = DSMSServer(hardened, recovery=ctx)
        server.register("reflectance(goes.vis)", encode_png=False)
        with recovering(ctx):
            server.run()
        ftracer = obs.current_frame_tracer()
        recorder = ftracer.recorder if ftracer is not None else None
        return ob.journal.to_dicts(), (injector, recorder)


class TestChaosJournal:
    @pytest.mark.parametrize("seed", (101, 404))
    def test_journal_is_bit_identical_with_and_without_tracing(self, seed):
        """ISSUE acceptance: tracing must not perturb the journal at all."""
        untraced, (injector_a, _) = run_chaos_journal(seed, traced=False)
        obs.disable_frame_tracing()
        traced, (injector_b, _) = run_chaos_journal(seed, traced=True)
        assert injector_a.counts == injector_b.counts
        assert untraced == traced  # byte-for-byte identical event streams
        assert untraced, "a default-mix drill must journal events"
        kinds = {e["kind"] for e in untraced}
        assert "fault" in kinds

    def test_journal_links_click_through_to_pinned_traces(self):
        events, (injector, recorder) = run_chaos_journal(101, traced=True)
        assert recorder is not None and recorder.pinned
        with obs.observe(journal=True) as ob:
            pass  # a fresh journal just for reconstruction
        journal = EventJournal()
        linked = 0
        for payload in events:
            event = journal.append(
                payload["kind"],
                query=payload["query"],
                epoch=payload["epoch"],
                reason=payload["reason"],
                link=payload["link"],
                t=payload["t"],
            )
            linked += bool(journal.captures(event, recorder))
        assert linked > 0, "fault events must resolve to pinned captures"
        del ob

    def test_fault_events_carry_simclock_time(self):
        from repro.faults import RecoveryContext

        spec = FaultSpec.single("drop", seed=202)
        context = RecoveryContext(clock=SimClock())
        with obs.observe(journal=True) as ob:
            hardened, injector, ctx = harden_catalog(make_catalog(), spec, context)
            server = DSMSServer(hardened, recovery=ctx)
            server.register("reflectance(goes.vis)", encode_png=False)
            with recovering(ctx):
                server.run()
        assert injector.counts["drop"] > 0
        faults = ob.journal.events(kind="fault")
        assert faults
        # Sim-clock times are small logical offsets, not stream-time epochs.
        assert all(e.t < DAY_T0 for e in faults)
