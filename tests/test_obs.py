"""Observability subsystem: registry, tracing, exporters, CLI snapshots."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.cli import main
from repro.engine import pipeline_report
from repro.obs.registry import MetricsRegistry, ObservabilityError
from repro.operators import Rescale
from repro.server import DSMSServer


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with observability fully off and empty."""
    obs.disable_metrics()
    obs.disable_tracing()
    obs.get_registry().reset()
    yield
    obs.disable_metrics()
    obs.disable_tracing()
    obs.get_registry().reset()


class TestRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ObservabilityError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_get_or_create_same_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total", a="1") is reg.counter("x_total", a="1")
        assert reg.counter("x_total", a="1") is not reg.counter("x_total", a="2")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ObservabilityError):
            reg.gauge("thing")

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.gauge("b").set(1)
        assert len(reg) == 2
        reg.reset()
        assert len(reg) == 0 and reg.snapshot() == []

    def test_thread_safe_counting(self):
        reg = MetricsRegistry()
        c = reg.counter("races_total")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestHistogram:
    def test_bucket_boundaries_are_inclusive(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 1.00001, 5.0, 10.0, 11.0):
            h.observe(v)
        # le semantics: a value equal to a bound lands in that bucket.
        assert h.counts == (2, 2, 1, 1)
        assert h.count == 6
        assert h.sum == pytest.approx(28.50001)

    def test_cumulative_ends_at_total(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        cumulative = h.cumulative()
        assert cumulative[0] == (1.0, 1)
        assert cumulative[1] == (2.0, 2)
        assert cumulative[-1][1] == 3 and cumulative[-1][0] == float("inf")

    def test_buckets_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            reg.histogram("empty", buckets=())

    def test_min_max_tracked(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        h.observe(0.25)
        h.observe(4.0)
        snap = h.snapshot()
        assert snap["min"] == 0.25 and snap["max"] == 4.0


class TestPrometheusExport:
    def test_counter_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", route="/q").inc(3)
        reg.gauge("depth").set(2.5)
        text = obs.to_prometheus(reg)
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{route="/q"} 3' in text
        assert "depth 2.5" in text

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("lag_seconds", buckets=(1.0, 5.0))
        for v in (0.5, 0.7, 3.0, 100.0):
            h.observe(v)
        text = obs.to_prometheus(reg)
        assert 'lag_seconds_bucket{le="1"} 2' in text
        assert 'lag_seconds_bucket{le="5"} 3' in text
        assert 'lag_seconds_bucket{le="+Inf"} 4' in text
        assert "lag_seconds_count 4" in text
        assert "lag_seconds_sum 104.2" in text

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("odd_total", path='a"b\\c\nd').inc()
        text = obs.to_prometheus(reg)
        assert r'path="a\"b\\c\nd"' in text

    def test_metric_name_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird.name-total").inc()
        assert "weird_name_total 1" in obs.to_prometheus(reg)

    def test_one_type_and_help_per_family(self):
        """Interleaved label registrations must not repeat family headers."""
        reg = MetricsRegistry()
        reg.counter("reqs_total", query=1).inc()
        reg.gauge("depth").set(1.0)
        reg.counter("reqs_total", query=2).inc(5)  # same family, registered later
        reg.counter("reqs_total", query=3).inc(7)
        text = obs.to_prometheus(reg)
        assert text.count("# TYPE reqs_total counter") == 1
        assert text.count("# HELP reqs_total ") == 1
        assert text.count("# TYPE depth gauge") == 1
        # All of a family's series render contiguously under its header.
        lines = text.splitlines()
        type_idx = lines.index("# TYPE reqs_total counter")
        series = [i for i, ln in enumerate(lines) if ln.startswith("reqs_total{")]
        assert len(series) == 3
        assert series == list(range(type_idx + 1, type_idx + 4))
        # HELP immediately precedes TYPE.
        assert lines[type_idx - 1].startswith("# HELP reqs_total ")

    def test_help_text_known_and_fallback(self):
        reg = MetricsRegistry()
        reg.counter("dsms_chunks_scanned_total").inc()
        reg.counter("my_custom_total").inc()
        text = obs.to_prometheus(reg)
        assert (
            "# HELP dsms_chunks_scanned_total Chunks admitted from all scanned sources."
            in text
        )
        assert "# HELP my_custom_total repro metric my_custom_total." in text

    def test_histogram_family_header_not_repeated_across_labels(self):
        reg = MetricsRegistry()
        reg.histogram("lag_seconds", query=1, buckets=(1.0,)).observe(0.5)
        reg.histogram("lag_seconds", query=2, buckets=(1.0,)).observe(2.0)
        text = obs.to_prometheus(reg)
        assert text.count("# TYPE lag_seconds histogram") == 1
        assert 'lag_seconds_bucket{le="1",query="1"} 1' in text
        assert 'lag_seconds_bucket{le="1",query="2"} 0' in text

    def test_build_info_gauge(self):
        reg = MetricsRegistry()
        obs.register_build_info(reg, columnar=False)
        obs.register_build_info(reg, columnar=False)  # idempotent (scrape path)
        text = obs.to_prometheus(reg)
        assert text.count("# TYPE repro_build_info gauge") == 1
        assert 'columnar="0"' in text
        assert 'python="' in text
        assert 'version="' in text
        [snap] = reg.snapshot()
        assert snap["value"] == 1.0


class TestSnapshotRoundTrip:
    def test_registry_snapshot_survives_json(self):
        reg = MetricsRegistry()
        reg.counter("a_total", x="1").inc(2)
        reg.gauge("b").set(-1.5)
        reg.histogram("c", buckets=(1.0, 2.0)).observe(1.5)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        kinds = {m["type"] for m in snap}
        assert kinds == {"counter", "gauge", "histogram"}

    def test_collect_run_merges_reports_spans_metrics(self, small_imager):
        with obs.observe(trace=True) as ob:
            out = small_imager.stream("vis").pipe(Rescale(2.0))
            out.count_points()
            reports = pipeline_report(out)
        run = obs.collect_run(reports, tracer=ob.tracer, registry=ob.registry, label="t")
        assert run["type"] == "run" and run["label"] == "t"
        assert json.loads(json.dumps(run)) == json.loads(json.dumps(run))
        assert run["operators"][0]["name"] == "value-transform"
        assert run["spans"] and run["spans"][0]["points_in"] > 0
        assert any(m["name"] == "pipeline_op_seconds" for m in run["metrics"])

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        n = obs.write_jsonl(path, [{"a": 1}, {"b": 2}])
        assert n == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == [{"a": 1}, {"b": 2}]
        obs.write_jsonl(path, [{"c": 3}], append=True)
        assert len(path.read_text().splitlines()) == 3


class TestTracing:
    def test_pipeline_spans_mirror_operator_chain(self, small_imager):
        op1, op2 = Rescale(2.0), Rescale(0.5)
        with obs.observe(trace=True) as ob:
            out = small_imager.stream("vis").pipe(op1, op2)
            out.count_points()
        spans = ob.tracer.to_dicts()
        assert [s["name"] for s in spans] == ["value-transform", "value-transform"]
        assert spans[0]["parent_id"] is None
        assert spans[1]["parent_id"] == spans[0]["span_id"]
        # Span throughput agrees with the operators' own cost accounting.
        assert spans[0]["points_in"] == op1.stats.points_in
        assert spans[1]["chunks_out"] == op2.stats.chunks_out
        assert all(s["wall_time_s"] > 0 and s["finished"] for s in spans)

    def test_compose_span_links_both_inputs(self, small_imager):
        from repro.engine import compose_streams
        from repro.operators import StreamComposition

        with obs.observe(trace=True) as ob:
            vis = small_imager.stream("vis").pipe(Rescale(1.0))
            nir = small_imager.stream("nir").pipe(Rescale(1.0))
            combined = compose_streams(nir, vis, StreamComposition("-"))
            combined.count_points()
        spans = {s["span_id"]: s for s in ob.tracer.to_dicts()}
        comp = next(s for s in spans.values() if s["name"] == "composition")
        assert comp["parent_id"] in spans
        assert len(comp["attrs"]["inputs"]) == 2
        assert comp["points_out"] > 0

    def test_spans_carry_stream_time(self, small_imager):
        with obs.observe(trace=True) as ob:
            small_imager.stream("vis").pipe(Rescale(1.0)).count_points()
        span = ob.tracer.to_dicts()[0]
        assert span["first_stream_t"] is not None
        assert span["last_stream_t"] >= span["first_stream_t"]
        assert span["stream_time_span_s"] == (
            span["last_stream_t"] - span["first_stream_t"]
        )

    def test_merge_sources_span(self, catalog):
        from repro.engine.scheduler import merge_sources

        sources = {sid: catalog.get(sid) for sid in catalog.ids()}
        with obs.observe(trace=True) as ob:
            n = sum(1 for _ in merge_sources(sources))
        scheduler_spans = [s for s in ob.tracer.to_dicts() if s["kind"] == "scheduler"]
        assert len(scheduler_spans) == 1
        span = scheduler_spans[0]
        assert span["chunks_in"] == n and span["finished"]
        assert span["attrs"]["sources"] == sorted(sources)


class TestZeroCostWhenDisabled:
    """The acceptance bar: disabled observability performs no registry writes."""

    def test_pipeline_run_leaves_registry_empty(self, small_imager):
        small_imager.stream("vis").pipe(Rescale(2.0)).count_points()
        assert len(obs.get_registry()) == 0
        assert obs.current_tracer() is None

    def test_dsms_run_leaves_registry_empty(self, catalog, small_imager):
        from tests.conftest import sector_subbox

        box = sector_subbox(small_imager, 0.1, 0.1, 0.6, 0.6)
        server = DSMSServer(catalog)
        session = server.register(
            f"within(reflectance(goes.vis), bbox({box.xmin!r}, {box.ymin!r}, "
            f"{box.xmax!r}, {box.ymax!r}, crs='geos:-135'))"
        )
        server.run()
        assert session.frames
        assert len(obs.get_registry()) == 0


class TestDSMSMetrics:
    def _run_demo(self, catalog, small_imager):
        from tests.conftest import sector_subbox

        box = sector_subbox(small_imager, 0.1, 0.1, 0.6, 0.6)
        server = DSMSServer(catalog)
        session = server.register(
            f"within(reflectance(goes.vis), bbox({box.xmin!r}, {box.ymin!r}, "
            f"{box.xmax!r}, {box.ymax!r}, crs='geos:-135'))"
        )
        server.run()
        return server, session

    def test_router_counters_match_stats(self, catalog, small_imager):
        with obs.observe() as ob:
            server, _ = self._run_demo(catalog, small_imager)
        by_name = {(m.name, tuple(sorted(m.labels.items()))): m for m in ob.registry}
        scanned = by_name[("dsms_chunks_scanned_total", ())]
        routed = by_name[("dsms_pairs_routed_total", ())]
        skipped = by_name[("dsms_pairs_skipped_total", ())]
        assert scanned.value == server.router_stats.chunks_scanned
        assert routed.value == server.router_stats.pairs_routed
        assert skipped.value == server.router_stats.pairs_skipped

    def test_session_latency_histogram_published(self, catalog, small_imager):
        with obs.observe() as ob:
            _, session = self._run_demo(catalog, small_imager)
        hists = [m for m in ob.registry if m.name == "dsms_delivery_lag_seconds"]
        assert len(hists) == 1
        assert hists[0].count == len(session.latencies)
        assert hists[0].labels == {"session": str(session.session_id)}

    def test_shedding_metrics_published(self, small_imager):
        from repro.operators import FrameSubsampler

        with obs.observe() as ob:
            small_imager.stream("vis").pipe(FrameSubsampler(2)).count_points()
        names = {m.name for m in ob.registry}
        assert "shed_frames_seen_total" in names
        assert "shed_frames_dropped_total" in names


class TestAccountingErrors:
    def test_buffer_remove_clamps_and_counts(self):
        from repro.errors import OperatorError
        from repro.operators.base import OperatorStats

        stats = OperatorStats()
        stats.buffer_add(10, 100)
        with pytest.raises(OperatorError):
            stats.buffer_remove(20, 400)
        # Post-mortem readability: counters clamped, violation recorded.
        assert stats.buffered_points == 0
        assert stats.buffered_bytes == 0
        assert stats.accounting_errors == 1

    def test_report_carries_accounting_errors(self, small_imager):
        out = small_imager.stream("vis").pipe(Rescale(1.0))
        out.count_points()
        report = pipeline_report(out)[0]
        assert report.accounting_errors == 0


SMALL = ["--sector", "48", "24", "--frames", "1"]


class TestCLISnapshots:
    def test_query_metrics_out_snapshot_schema(self, capsys, tmp_path):
        """Acceptance: per-operator spans + a DSMS latency histogram."""
        path = tmp_path / "run.jsonl"
        rc = main(
            [
                "query",
                "stretch(reflectance(goes.vis), 'linear')",
                "--metrics-out",
                str(path),
                *SMALL,
            ]
        )
        assert rc == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        by_type: dict[str, list] = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        assert by_type["meta"][0]["n_spans"] > 0
        op_spans = [s for s in by_type["span"] if s["kind"] == "operator"]
        assert op_spans, "snapshot must contain per-operator spans"
        for span in op_spans:
            assert span["wall_time_s"] >= 0
            assert span["points_in"] > 0 and span["points_out"] > 0
        latency_hists = [
            m
            for m in by_type["histogram"]
            if m["name"] == "dsms_delivery_lag_seconds" and m["count"] > 0
        ]
        assert latency_hists, "snapshot must contain a DSMS latency histogram"
        assert by_type["operator"], "snapshot must contain operator reports"
        # And the observed run must not leak enabled state into the process.
        assert not obs.metrics_enabled() and obs.current_tracer() is None

    def test_query_without_flags_is_unobserved(self, capsys):
        rc = main(["query", "stretch(reflectance(goes.vis), 'linear')", *SMALL])
        assert rc == 0
        assert len(obs.get_registry()) == 0

    def test_serve_demo_metrics_out(self, capsys, tmp_path):
        path = tmp_path / "demo.jsonl"
        rc = main(
            ["serve-demo", "--clients", "2", "--metrics-out", str(path), *SMALL]
        )
        assert rc == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        names = {r.get("name") for r in records}
        assert "dsms_chunks_scanned_total" in names

    def test_metrics_prometheus_output(self, capsys):
        rc = main(["metrics", "--clients", "2", *SMALL])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE dsms_chunks_scanned_total counter" in out
        assert "dsms_delivery_lag_seconds_bucket" in out

    def test_metrics_self_test(self, capsys):
        assert main(["metrics", "--self-test"]) == 0
        assert "self-test: ok" in capsys.readouterr().out


class TestHistogramQuantiles:
    def test_interpolated_within_observed_range(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0, 8.0))
        for v in (0.5, 1.5, 1.5, 3.0, 6.0, 7.0):
            h.observe(v)
        for q in (0.1, 0.5, 0.95, 0.99):
            est = h.quantile(q)
            assert est is not None and 0.5 <= est <= 7.0

    def test_quantiles_are_monotone(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0, 100.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0, 500.0, 42.0, 0.2):
            h.observe(v)
        snap = h.snapshot()
        assert snap["p50"] <= snap["p95"] <= snap["p99"]

    def test_overflow_bucket_resolves_to_observed_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        for v in (0.5, 30.0, 99.0):
            h.observe(v)
        assert h.quantile(0.99) == 99.0

    def test_extremes_and_empty(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        assert h.quantile(0.5) is None
        h.observe(0.25)
        h.observe(1.75)
        assert h.quantile(0.0) == 0.25
        assert h.quantile(1.0) == 1.75
        with pytest.raises(ObservabilityError):
            h.quantile(-0.1)

    def test_snapshot_and_prometheus_render_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lag_seconds", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        snap = h.snapshot()
        assert {"p50", "p95", "p99"} <= set(snap)
        text = obs.to_prometheus(reg)
        assert 'lag_seconds{quantile="0.5"}' in text
        assert 'lag_seconds{quantile="0.95"}' in text
        assert 'lag_seconds{quantile="0.99"}' in text
        # Companion series come after the canonical histogram lines.
        assert text.index("lag_seconds_count") < text.index('quantile="0.5"')

    def test_format_report_appends_quantile_section(self, small_imager):
        from repro.engine import format_report

        with obs.observe(trace=True) as ob:
            small_imager.stream("vis").pipe(Rescale(2.0)).count_points()
            ob.registry.histogram("lag_seconds", buckets=(1.0,)).observe(0.5)
            reports = []
        plain = format_report(reports)
        assert "histogram quantiles" not in plain
        rich = format_report(reports, ob.registry)
        assert "histogram quantiles" in rich
        assert "lag_seconds" in rich and "p95" in rich


class TestExporterEdgeCases:
    def test_label_escaping_all_specials_and_multiple_labels(self):
        reg = MetricsRegistry()
        reg.counter("esc_total", a="x\\", b='"', c="line1\nline2").inc()
        text = obs.to_prometheus(reg)
        assert r'a="x\\"' in text
        assert r'b="\""' in text
        assert r'c="line1\nline2"' in text
        # No raw newline may survive inside a label value.
        for line in text.splitlines():
            assert "line2" not in line or r"\n" in line

    def test_label_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("odd_total", **{"weird-key.name": "v"}).inc()
        assert 'weird_key_name="v"' in obs.to_prometheus(reg)

    def test_cumulative_bucket_counts_are_monotone(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 0.5, 1.0, 5.0, 10.0))
        for i in range(200):
            h.observe((i % 23) * 0.6)
        cumulative = h.cumulative()
        counts = [c for _, c in cumulative]
        assert counts == sorted(counts), "cumulative counts must be monotone"
        assert counts[-1] == h.count
        # The rendered exposition preserves the same monotone ladder.
        text = obs.to_prometheus(reg)
        rendered = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("lat_bucket")
        ]
        assert rendered == counts


class TestSelfTestExitCodes:
    def test_success_exit_zero(self, capsys):
        assert main(["metrics", "--self-test"]) == 0
        assert "self-test: ok" in capsys.readouterr().out

    def test_failure_exit_one(self, capsys, monkeypatch):
        import repro.cli as cli

        def broken() -> None:
            raise AssertionError("forced invariant failure")

        monkeypatch.setattr(cli, "_metrics_self_test_body", broken)
        assert main(["metrics", "--self-test"]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err and "forced invariant failure" in err
