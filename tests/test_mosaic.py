"""Multi-satellite mosaics: the NaN-aware composition kernel."""

import numpy as np
import pytest

from repro.core import GridLattice
from repro.engine import compose_streams
from repro.geo import LATLON, BoundingBox, goes_geostationary, plate_carree
from repro.ingest import GOESImager
from repro.operators import Reproject, StreamComposition, reflectance
from repro.operators.composition import nan_supremum

WIDE_BOX = (-170.0, 5.0, -30.0, 50.0)


def build_imager(scene, lon_0):
    crs = goes_geostationary(lon_0)
    geo_box = BoundingBox(*WIDE_BOX, LATLON).transformed(crs)
    sector = GridLattice.from_bbox(
        geo_box, dx=geo_box.width / 64, dy=geo_box.height / 24, crs=crs
    )
    return GOESImager(scene=scene, lon_0=lon_0, sector_lattice=sector, n_frames=1, t0=72_000.0)


@pytest.fixture(scope="module")
def target():
    pc = plate_carree()
    x0, y0 = pc.from_lonlat(WIDE_BOX[0], WIDE_BOX[1])
    x1, y1 = pc.from_lonlat(WIDE_BOX[2], WIDE_BOX[3])
    box = BoundingBox(float(x0), float(y0), float(x1), float(y1), pc)
    return GridLattice.from_bbox(box, dx=box.width / 96, dy=box.height / 36, crs=pc)


class TestNanSupremum:
    def test_fills_from_covered_side(self):
        a = np.array([np.nan, 1.0, 3.0, np.nan])
        b = np.array([2.0, np.nan, 1.0, np.nan])
        out = nan_supremum(a, b)
        np.testing.assert_array_equal(out[:3], [2.0, 1.0, 3.0])
        assert np.isnan(out[3])

    def test_reduces_to_maximum_when_both_finite(self):
        rng = np.random.default_rng(0)
        a, b = rng.uniform(size=50), rng.uniform(size=50)
        np.testing.assert_array_equal(nan_supremum(a, b), np.maximum(a, b))


class TestTwoSatelliteMosaic:
    def test_mosaic_coverage_exceeds_either_view(self, scene, target):
        west = build_imager(scene, -135.0)
        east = build_imager(scene, -75.0)
        pc = target.crs
        west_view = reflectance(west.stream("vis")).pipe(Reproject(pc, dst_lattice=target))
        east_view = reflectance(east.stream("vis")).pipe(Reproject(pc, dst_lattice=target))

        w = west_view.collect_frames()[0].values
        e = east_view.collect_frames()[0].values
        cov_w = np.isfinite(w).mean()
        cov_e = np.isfinite(e).mean()
        # The wide box exceeds each satellite's disk on one side.
        assert cov_w < 1.0 and cov_e < 1.0

        op = StreamComposition("mosaic")
        mosaic = compose_streams(west_view, east_view, op)
        m = mosaic.collect_frames()[0].values
        cov_m = np.isfinite(m).mean()
        assert cov_m >= max(cov_w, cov_e)
        assert cov_m > 0.95

    def test_mosaic_agrees_with_pointwise_kernel(self, scene, target):
        west = build_imager(scene, -135.0)
        east = build_imager(scene, -75.0)
        pc = target.crs
        west_view = reflectance(west.stream("vis")).pipe(Reproject(pc, dst_lattice=target))
        east_view = reflectance(east.stream("vis")).pipe(Reproject(pc, dst_lattice=target))
        w = west_view.collect_frames()[0].values
        e = east_view.collect_frames()[0].values
        op = StreamComposition("mosaic")
        m = compose_streams(west_view, east_view, op).collect_frames()[0].values
        np.testing.assert_allclose(
            m, nan_supremum(w.astype(np.float64), e.astype(np.float64)).astype(np.float32),
            equal_nan=True, atol=1e-6,
        )

    def test_mosaic_via_query_language(self, scene, target):
        """'mosaic' is a first-class gamma in the textual language."""
        from repro.query import parse_query

        tree = parse_query("mosaic(goes_west.vis, goes_east.vis)")
        assert tree.gamma == "mosaic"

    def test_views_are_composable_thanks_to_shared_lattice(self, scene, target):
        """Same dst lattice => aligned lattices => Def. 10's precondition."""
        west = build_imager(scene, -135.0)
        east = build_imager(scene, -75.0)
        pc = target.crs
        wv = reflectance(west.stream("vis")).pipe(Reproject(pc, dst_lattice=target))
        ev = reflectance(east.stream("vis")).pipe(Reproject(pc, dst_lattice=target))
        cw = wv.collect_chunks()[0]
        ce = ev.collect_chunks()[0]
        assert cw.lattice.aligned_with(ce.lattice)
