"""Stream restrictions (Section 3.1): semantics and the non-blocking claim."""

import numpy as np
import pytest

from repro.core import TimeInstants, TimeInterval
from repro.errors import CRSMismatchError, OperatorError
from repro.geo import LATLON, BoundingBox, PolygonRegion
from repro.ingest import LidarScanner
from repro.operators import SpatialRestriction, TemporalRestriction, ValueRestriction

from_test_helpers = None  # placeholder to keep imports explicit below


def sector_subbox(imager, fx0, fy0, fx1, fy1):
    box = imager.sector_lattice.bbox
    return BoundingBox(
        box.xmin + box.width * fx0,
        box.ymin + box.height * fy0,
        box.xmin + box.width * fx1,
        box.ymin + box.height * fy1,
        box.crs,
    )


class TestSpatialRestriction:
    def test_bbox_crops_exactly(self, small_imager):
        region = sector_subbox(small_imager, 0.25, 0.25, 0.75, 0.75)
        op = SpatialRestriction(region)
        frames = small_imager.stream("vis").pipe(op).collect_frames()
        assert len(frames) == 2
        # Every retained pixel center is inside the region.
        x, y = frames[0].lattice.meshgrid()
        assert bool(np.all(region.mask(x, y)))

    def test_all_points_inside_region(self, small_imager):
        """Def. 6: G|R = {(x, G(x)) : x in G and x.s in R}."""
        region = sector_subbox(small_imager, 0.1, 0.1, 0.6, 0.4)
        stream = small_imager.stream("vis")
        restricted = stream.pipe(SpatialRestriction(region))
        full = stream.collect_frames()[0]
        sub = restricted.collect_frames()[0]
        # Values agree with the source at the same coordinates.
        x, y = sub.lattice.meshgrid()
        rows = full.lattice.row_of_y(y[:, 0])
        cols = full.lattice.col_of_x(x[0, :])
        np.testing.assert_array_equal(sub.values, full.values[np.ix_(rows, cols)])

    def test_nonblocking_zero_buffer(self, small_imager):
        """Section 3.1: evaluated without storage for intermediate data."""
        op = SpatialRestriction(sector_subbox(small_imager, 0.2, 0.2, 0.8, 0.8))
        small_imager.stream("vis").pipe(op).count_points()
        assert op.stats.max_buffered_points == 0
        assert op.stats.is_nonblocking

    def test_disjoint_region_empty_stream(self, small_imager):
        box = small_imager.sector_lattice.bbox
        far = BoundingBox(box.xmax + 1e6, box.ymax + 1e6, box.xmax + 2e6, box.ymax + 2e6, box.crs)
        out = small_imager.stream("vis").pipe(SpatialRestriction(far)).collect_chunks()
        assert out == []

    def test_crs_mismatch_raises(self, small_imager):
        wrong = BoundingBox(-122.0, 38.0, -121.0, 39.0, LATLON)
        with pytest.raises(CRSMismatchError):
            small_imager.stream("vis").pipe(SpatialRestriction(wrong)).collect_chunks()

    def test_polygon_region_masks_to_nan(self, small_imager):
        box = sector_subbox(small_imager, 0.2, 0.2, 0.8, 0.8)
        tri = PolygonRegion(
            [(box.xmin, box.ymin), (box.xmax, box.ymin), (box.xmin, box.ymax)], box.crs
        )
        frames = small_imager.stream("vis").pipe(SpatialRestriction(tri)).collect_frames()
        values = frames[0].values
        assert np.issubdtype(values.dtype, np.floating)
        assert np.isnan(values).any()
        assert np.isfinite(values).any()

    def test_narrows_frame_metadata(self, small_imager):
        """Restriction narrows the scan-sector metadata (enables pushdown wins)."""
        region = sector_subbox(small_imager, 0.25, 0.25, 0.5, 0.5)
        chunks = small_imager.stream("vis").pipe(SpatialRestriction(region)).collect_chunks()
        frame = chunks[0].frame
        assert frame is not None
        assert frame.lattice.width < small_imager.sector_lattice.width
        assert frame.lattice.height < small_imager.sector_lattice.height
        # The last retained row is flagged so downstream frames complete.
        assert chunks[-1].last_in_frame

    def test_point_stream_restriction(self, scene):
        lidar = LidarScanner(scene=scene, n_points=400, points_per_chunk=100)
        stream = lidar.stream()
        all_chunks = stream.collect_chunks()
        xs = np.concatenate([c.x for c in all_chunks])
        ys = np.concatenate([c.y for c in all_chunks])
        region = BoundingBox(
            float(np.percentile(xs, 25)),
            float(np.percentile(ys, 25)),
            float(np.percentile(xs, 75)),
            float(np.percentile(ys, 75)),
            LATLON,
        )
        op = SpatialRestriction(region)
        kept = stream.pipe(op).collect_chunks()
        n_kept = sum(c.n_points for c in kept)
        expected = int(region.mask(xs, ys).sum())
        assert n_kept == expected
        assert op.stats.max_buffered_points == 0

    def test_metadata_unchanged_for_box(self, small_imager):
        stream = small_imager.stream("vis")
        out = stream.pipe(SpatialRestriction(sector_subbox(small_imager, 0, 0, 1, 1)))
        assert out.metadata.value_set == stream.metadata.value_set


class TestTemporalRestriction:
    def test_interval_selects_frames(self, small_imager):
        period = small_imager.frame_period
        t0 = small_imager.t0
        op = TemporalRestriction(TimeInterval(t0, t0 + period, closed_end=False))
        frames = small_imager.stream("vis").pipe(op).collect_frames()
        assert len(frames) == 1

    def test_whole_chunk_granularity_o1(self, small_imager):
        op = TemporalRestriction(TimeInterval(0.0, 1e12))
        stream = small_imager.stream("vis")
        out = stream.pipe(op)
        assert out.count_points() == stream.count_points()
        assert op.stats.max_buffered_points == 0

    def test_sector_based(self, small_imager):
        op = TemporalRestriction(TimeInterval(1.0, 1.0), on_sector=True)
        frames = small_imager.stream("vis").pipe(op).collect_frames()
        assert len(frames) == 1
        assert frames[0].sector == 1

    def test_sector_mode_without_sectors_raises(self, latlon_lattice):
        from repro.core import FLOAT32, GeoStream, GridChunk, Organization, StreamMetadata

        meta = StreamMetadata("x", "b", LATLON, Organization.IMAGE_BY_IMAGE, FLOAT32)
        chunk = GridChunk(np.zeros(latlon_lattice.shape), latlon_lattice, "b", 0.0, sector=None)
        stream = GeoStream.from_chunks(meta, [chunk])
        op = TemporalRestriction(TimeInterval(0.0, 1.0), on_sector=True)
        with pytest.raises(OperatorError):
            stream.pipe(op).collect_chunks()

    def test_point_stream_per_point_filter(self, scene):
        lidar = LidarScanner(scene=scene, n_points=300, points_per_chunk=100)
        chunk0 = lidar.stream().collect_chunks()[0]
        t_mid = float(chunk0.t[50])
        op = TemporalRestriction(TimeInterval(0.0, t_mid))
        kept = lidar.stream().pipe(op).collect_chunks()
        assert sum(c.n_points for c in kept) == 51  # closed interval

    def test_instants(self, small_imager):
        chunks = small_imager.stream("vis").collect_chunks()
        target = chunks[5].t
        op = TemporalRestriction(TimeInstants((target,), tolerance=1e-9))
        out = small_imager.stream("vis").pipe(op).collect_chunks()
        assert len(out) == 1 and out[0].t == target


class TestValueRestriction:
    def test_range_masks_grid(self, small_imager):
        op = ValueRestriction(lo=100.0, hi=300.0)
        frames = small_imager.stream("vis").pipe(op).collect_frames()
        values = frames[0].values
        finite = values[np.isfinite(values)]
        assert finite.size > 0
        assert finite.min() >= 100.0 and finite.max() <= 300.0

    def test_drops_chunks_with_no_matches(self, small_imager):
        op = ValueRestriction(lo=1e9, hi=2e9)
        out = small_imager.stream("vis").pipe(op).collect_chunks()
        assert out == []

    def test_predicate(self, small_imager):
        op = ValueRestriction(predicate=lambda v: v % 2 == 0)
        frames = small_imager.stream("vis").pipe(op).collect_frames()
        finite = frames[0].values[np.isfinite(frames[0].values)]
        assert (finite % 2 == 0).all()

    def test_nonblocking(self, small_imager):
        op = ValueRestriction(lo=0.0, hi=1e9)
        small_imager.stream("vis").pipe(op).count_points()
        assert op.stats.is_nonblocking

    def test_point_stream(self, scene):
        lidar = LidarScanner(scene=scene, n_points=200, points_per_chunk=200)
        op = ValueRestriction(lo=1000.0, hi=None)
        kept = lidar.stream().pipe(op).collect_chunks()
        for c in kept:
            assert (c.values >= 1000.0).all()

    def test_needs_bounds_or_predicate(self):
        with pytest.raises(OperatorError):
            ValueRestriction()
        with pytest.raises(OperatorError):
            ValueRestriction(lo=0.0, predicate=lambda v: v > 0)

    def test_metadata_value_set_widens_to_float(self, small_imager):
        stream = small_imager.stream("vis")
        out = stream.pipe(ValueRestriction(lo=0.0, hi=500.0))
        assert not out.metadata.value_set.is_integer
