"""CRS spec serialization (backs the archive format)."""

import pytest

from repro.errors import CRSError
from repro.geo import (
    CRS,
    GRS80,
    SPHERE,
    Geostationary,
    from_spec,
    goes_geostationary,
    lambert_conic,
    latlon,
    mercator,
    plate_carree,
    sinusoidal,
    spec_of,
    utm,
)


ALL_STANDARD = [
    latlon(),
    plate_carree(),
    plate_carree(lon_0=-120.0),
    mercator(),
    mercator(lon_0=15.0),
    sinusoidal(),
    sinusoidal(lon_0=-90.0),
    utm(1),
    utm(10),
    utm(60),
    utm(33, north=False),
    goes_geostationary(-135.0),
    goes_geostationary(-75.0),
    lambert_conic(),
    lambert_conic(20.0, 60.0, 40.0, 10.0),
]


class TestSpecRoundTrip:
    @pytest.mark.parametrize("crs", ALL_STANDARD, ids=lambda c: c.name)
    def test_roundtrip(self, crs):
        spec = spec_of(crs)
        assert from_spec(spec) == crs

    def test_spec_is_stable(self):
        assert spec_of(utm(10)) == "utm:10N"
        assert spec_of(utm(33, north=False)) == "utm:33S"
        assert spec_of(goes_geostationary(-75.0)) == "geos:-75"
        assert spec_of(latlon()) == "latlon"

    def test_query_language_names_accepted(self):
        assert from_spec("UTM:10n") == utm(10)
        assert from_spec("wgs84").is_geographic
        assert from_spec("geos") == goes_geostationary()
        assert from_spec("lcc") == lambert_conic()


class TestSpecErrors:
    def test_unknown_spec(self):
        with pytest.raises(CRSError):
            from_spec("epsg:4326")

    def test_malformed_parameters(self):
        with pytest.raises(CRSError):
            from_spec("geos:east")
        with pytest.raises(CRSError):
            from_spec("utm:zone10")
        with pytest.raises(CRSError):
            from_spec("lcc:1:2")  # wrong arity

    def test_nonstandard_crs_rejected(self):
        # A geostationary view on a spherical datum has no factory form.
        odd = CRS("odd", Geostationary(SPHERE, lon_0=0.0), SPHERE)
        with pytest.raises(CRSError):
            spec_of(odd)

    def test_nonstandard_geographic_rejected(self):
        odd = latlon(GRS80)
        with pytest.raises(CRSError):
            spec_of(odd)
