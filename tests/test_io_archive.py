"""Stream archives: round-trips, replayability, corruption detection."""

import numpy as np
import pytest

from repro.errors import CodecError
from repro.ingest import LidarScanner
from repro.io import read_archive, write_archive
from repro.operators import SpatialRestriction, ndvi, reflectance


class TestGridArchives:
    def test_roundtrip_preserves_chunks(self, small_imager, tmp_path):
        stream = small_imager.stream("vis")
        path = tmp_path / "vis.gsar"
        count = write_archive(stream, path)
        assert count == 2 * 48
        replay = read_archive(path)
        original = stream.collect_chunks()
        replayed = replay.collect_chunks()
        assert len(original) == len(replayed)
        for a, b in zip(original, replayed):
            np.testing.assert_array_equal(a.values, b.values)
            assert a.lattice == b.lattice
            assert a.t == b.t and a.sector == b.sector
            assert a.row0 == b.row0 and a.last_in_frame == b.last_in_frame
            assert (a.frame is None) == (b.frame is None)
            if a.frame is not None:
                assert a.frame.frame_id == b.frame.frame_id
                assert a.frame.lattice == b.frame.lattice

    def test_metadata_preserved(self, small_imager, tmp_path):
        stream = small_imager.stream("nir")
        path = tmp_path / "nir.gsar"
        write_archive(stream, path)
        replay = read_archive(path)
        assert replay.metadata.stream_id == stream.metadata.stream_id
        assert replay.metadata.crs == stream.crs
        assert replay.metadata.organization == stream.organization
        assert replay.metadata.value_set == stream.value_set
        assert replay.metadata.max_frame_shape == stream.metadata.max_frame_shape

    def test_replay_is_reopenable(self, small_imager, tmp_path):
        path = tmp_path / "vis.gsar"
        write_archive(small_imager.stream("vis"), path)
        replay = read_archive(path)
        assert replay.count_points() == replay.count_points()

    def test_replay_feeds_operators(self, small_imager, tmp_path):
        """An archived stream is a full citizen of the algebra."""
        path_v = tmp_path / "vis.gsar"
        path_n = tmp_path / "nir.gsar"
        write_archive(small_imager.stream("vis"), path_v)
        write_archive(small_imager.stream("nir"), path_n)
        product = ndvi(
            reflectance(read_archive(path_n)), reflectance(read_archive(path_v))
        )
        live = ndvi(
            reflectance(small_imager.stream("nir")),
            reflectance(small_imager.stream("vis")),
        )
        a = product.collect_frames()
        b = live.collect_frames()
        assert len(a) == len(b)
        np.testing.assert_allclose(a[0].values, b[0].values, equal_nan=True)

    def test_derived_stream_archivable(self, small_imager, tmp_path):
        """Archive a float-valued derived product, not just raw counts."""
        region = small_imager.sector_lattice.bbox
        derived = reflectance(small_imager.stream("vis")).pipe(SpatialRestriction(region))
        path = tmp_path / "derived.gsar"
        write_archive(derived, path)
        replay = read_archive(path)
        assert replay.collect_frames()[0].values.dtype == np.float32


class TestPointArchives:
    def test_roundtrip(self, scene, tmp_path):
        lidar = LidarScanner(scene=scene, n_points=300, points_per_chunk=100)
        path = tmp_path / "lidar.gsar"
        write_archive(lidar.stream(), path)
        replay = read_archive(path)
        original = lidar.stream().collect_chunks()
        replayed = replay.collect_chunks()
        assert len(original) == len(replayed)
        for a, b in zip(original, replayed):
            np.testing.assert_array_equal(a.x, b.x)
            np.testing.assert_array_equal(a.t, b.t)
            np.testing.assert_array_equal(a.values, b.values)
            assert a.crs == b.crs


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.gsar"
        path.write_bytes(b"NOTANARCHIVE")
        with pytest.raises(CodecError):
            read_archive(path)

    def test_truncated_file(self, small_imager, tmp_path):
        path = tmp_path / "vis.gsar"
        write_archive(small_imager.stream("vis"), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 10])
        replay = read_archive(path)
        with pytest.raises(CodecError):
            replay.collect_chunks()

    def test_flipped_byte_detected(self, small_imager, tmp_path):
        path = tmp_path / "vis.gsar"
        write_archive(small_imager.stream("vis"), path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        replay = read_archive(path)
        with pytest.raises(CodecError):
            replay.collect_chunks()
