"""Instrument simulators: the three Fig. 1 organizations."""

import numpy as np
import pytest

from repro.core import Organization, PointChunk
from repro.errors import StreamError
from repro.geo import haversine_m
from repro.ingest import AirborneCamera, GOESImager, LidarScanner, western_us_sector

DAY_T0 = 72_000.0


class TestGOESImager:
    def test_row_by_row_organization(self, small_imager):
        chunks = small_imager.stream("vis").collect_chunks()
        assert len(chunks) == 2 * 48  # frames x rows
        assert all(c.lattice.height == 1 for c in chunks)

    def test_sector_ids_increment_per_frame(self, small_imager):
        chunks = small_imager.stream("vis").collect_chunks()
        sectors = sorted({c.sector for c in chunks})
        assert sectors == [0, 1]

    def test_deterministic_reopen(self, small_imager):
        s = small_imager.stream("nir")
        f1 = s.collect_frames()
        f2 = s.collect_frames()
        np.testing.assert_array_equal(f1[0].values, f2[0].values)

    def test_row_interleave_times_strictly_ordered_within_band(self, small_imager):
        chunks = small_imager.stream("vis").collect_chunks()
        ts = [c.t for c in chunks]
        assert ts == sorted(ts)

    def test_bands_never_share_measured_timestamps(self, small_imager):
        """Section 3.3: measured stamps of different bands never match."""
        vis_t = {c.t for c in small_imager.stream("vis").collect_chunks()}
        nir_t = {c.t for c in small_imager.stream("nir").collect_chunks()}
        assert not (vis_t & nir_t)

    def test_band_interleave_band_mode_sequential(self, scene, geos_crs):
        sector = western_us_sector(geos_crs, width=32, height=16)
        imager = GOESImager(
            scene=scene, sector_lattice=sector, n_frames=1, band_interleave="band", t0=DAY_T0
        )
        vis_last = max(c.t for c in imager.stream("vis").collect_chunks())
        nir_first = min(c.t for c in imager.stream("nir").collect_chunks())
        assert nir_first > vis_last  # whole vis sweep precedes nir

    def test_unknown_band_rejected(self, small_imager):
        with pytest.raises(StreamError):
            small_imager.stream("tir")

    def test_image_organization_whole_frames(self, scene, geos_crs):
        sector = western_us_sector(geos_crs, width=32, height=16)
        imager = GOESImager(
            scene=scene,
            sector_lattice=sector,
            n_frames=2,
            organization=Organization.IMAGE_BY_IMAGE,
            t0=DAY_T0,
        )
        chunks = imager.stream("vis").collect_chunks()
        assert len(chunks) == 2
        assert chunks[0].lattice.shape == (16, 32)

    def test_image_and_row_modes_produce_same_frames(self, scene, geos_crs):
        sector = western_us_sector(geos_crs, width=32, height=16)
        kw = dict(scene=scene, sector_lattice=sector, n_frames=1, t0=DAY_T0)
        rows = GOESImager(organization=Organization.ROW_BY_ROW, **kw)
        imgs = GOESImager(organization=Organization.IMAGE_BY_IMAGE, **kw)
        f_rows = rows.stream("vis").collect_frames()[0]
        f_imgs = imgs.stream("vis").collect_frames()[0]
        np.testing.assert_array_equal(f_rows.values, f_imgs.values)

    def test_metadata(self, small_imager):
        meta = small_imager.stream("vis").metadata
        assert meta.stream_id == "goes.vis"
        assert meta.max_frame_shape == (48, 96)
        assert meta.timestamp_policy == "sector"

    def test_sector_covers_western_us(self, small_imager, geos_crs):
        lattice = small_imager.sector_lattice
        x, y = geos_crs.from_lonlat(-120.0, 40.0)
        assert lattice.bbox.contains_point(float(x), float(y))

    def test_bad_bits_rejected(self, scene):
        with pytest.raises(StreamError):
            GOESImager(scene=scene, bits=12)

    def test_raw_records_decode_standalone(self, small_imager):
        from repro.ingest import decode_record

        first = next(iter(small_imager.raw_records("vis")))
        rec = decode_record(first)
        assert rec.band == "vis" and rec.row == 0


class TestAirborneCamera:
    def test_image_by_image(self, scene):
        cam = AirborneCamera(scene=scene, n_frames=4, frame_width=16, frame_height=12)
        stream = cam.stream()
        assert stream.organization is Organization.IMAGE_BY_IMAGE
        frames = stream.collect_frames()
        assert len(frames) == 4
        assert frames[0].shape == (12, 16)

    def test_frames_cover_different_regions(self, scene):
        cam = AirborneCamera(scene=scene, n_frames=3, frame_spacing_deg=0.5)
        frames = cam.stream().collect_frames()
        b0 = frames[0].lattice.bbox
        b2 = frames[2].lattice.bbox
        assert not b0.intersects(b2)

    def test_heading_moves_east_by_default(self, scene):
        cam = AirborneCamera(scene=scene, n_frames=2, heading_deg=90.0)
        l0 = cam.frame_lattice(0)
        l1 = cam.frame_lattice(1)
        assert l1.x0 > l0.x0
        assert l1.y0 == pytest.approx(l0.y0)

    def test_deterministic(self, scene):
        cam = AirborneCamera(scene=scene, n_frames=2)
        a = cam.stream().collect_frames()
        b = cam.stream().collect_frames()
        np.testing.assert_array_equal(a[1].values, b[1].values)

    def test_invalid_band(self, scene):
        with pytest.raises(StreamError):
            AirborneCamera(scene=scene, band="purple")


class TestLidarScanner:
    def test_point_by_point(self, scene):
        lidar = LidarScanner(scene=scene, n_points=500, points_per_chunk=100)
        stream = lidar.stream()
        assert stream.organization is Organization.POINT_BY_POINT
        chunks = stream.collect_chunks()
        assert len(chunks) == 5
        assert all(isinstance(c, PointChunk) for c in chunks)

    def test_points_ordered_by_time_only(self, scene):
        lidar = LidarScanner(scene=scene, n_points=300, points_per_chunk=300)
        chunk = lidar.stream().collect_chunks()[0]
        assert (np.diff(chunk.t) > 0).all()

    def test_cross_track_jitter_nonuniform(self, scene):
        """Fig. 1c: no regular lattice — consecutive spacings vary."""
        lidar = LidarScanner(scene=scene, n_points=200, points_per_chunk=200)
        chunk = lidar.stream().collect_chunks()[0]
        d = haversine_m(chunk.x[:-1], chunk.y[:-1], chunk.x[1:], chunk.y[1:])
        assert np.std(d) > 0.01 * np.mean(d)

    def test_elevation_scale(self, scene):
        lidar = LidarScanner(scene=scene, n_points=100, points_per_chunk=100)
        chunk = lidar.stream().collect_chunks()[0]
        assert chunk.values.min() >= 0.0
        assert chunk.values.max() <= lidar.elevation_scale

    def test_remainder_chunk(self, scene):
        lidar = LidarScanner(scene=scene, n_points=250, points_per_chunk=100)
        chunks = lidar.stream().collect_chunks()
        assert [c.n_points for c in chunks] == [100, 100, 50]
