"""Stream-time delivery latency: buffering shows up as lag (E5 companion).

All timing here is *simulated*: delivery lag is measured on the server's
stream-time clock and source stalls advance the fault layer's
:class:`~repro.faults.SimClock`. No test sleeps wall-clock time, so the
module is timing-robust on loaded CI machines — a stalled downlink costs
simulated seconds, not test-suite seconds.
"""

import math

import numpy as np

from repro.faults import FaultSpec, SimClock, harden_catalog, recovering
from repro.ingest import GOESImager, western_us_sector
from repro.server import DSMSServer, StreamCatalog

DAY_T0 = 72_000.0


def make_server(scene, geos_crs, interleave):
    sector = western_us_sector(geos_crs, width=32, height=16)
    imager = GOESImager(
        scene=scene,
        sector_lattice=sector,
        n_frames=2,
        band_interleave=interleave,
        t0=DAY_T0,
    )
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    return imager, DSMSServer(catalog)


NDVI = "ndvi(reflectance(goes.nir), reflectance(goes.vis))"


class TestDeliveryLatency:
    def test_latencies_recorded(self, scene, geos_crs):
        _, server = make_server(scene, geos_crs, "row")
        session = server.register(NDVI)
        server.run()
        assert len(session.latencies) == len(session.frames) == 2
        assert all(np.isfinite(v) for v in session.latencies)
        assert np.isfinite(session.mean_latency)

    def test_single_band_latency_near_zero(self, scene, geos_crs):
        """A restriction-only query delivers as the frame's last row lands."""
        imager, server = make_server(scene, geos_crs, "row")
        session = server.register("reflectance(goes.vis)")
        server.run()
        # The frame completes when its own last row arrives: lag is at most
        # one band-sweep of detector offsets.
        assert session.mean_latency <= imager.row_time * imager.sector_lattice.height

    def test_sequential_band_scan_adds_a_band_of_wait(self, scene, geos_crs):
        """Under sequential band scanning, buffered vis rows wait roughly a
        full band sweep for their nir partners; under row interleaving they
        wait only a detector offset (composition wait-time stats)."""
        from repro.engine import compose_streams
        from repro.operators import StreamComposition

        def mean_wait(interleave):
            imager, _ = make_server(scene, geos_crs, interleave)
            op = StreamComposition("-")
            compose_streams(imager.stream("nir"), imager.stream("vis"), op).count_points()
            return op.stats.mean_wait_time, imager

        wait_row, imager = mean_wait("row")
        wait_seq, imager_seq = mean_wait("band")
        band_duration = imager_seq.sector_lattice.height * imager_seq.row_time
        assert wait_seq > wait_row * 10
        assert wait_seq >= band_duration * 0.9
        # Row interleaving waits only the per-detector offset.
        assert wait_row <= imager.row_time

    def test_no_clock_no_latencies(self, scene, geos_crs):
        """Sessions used outside a server record no latencies."""
        from repro.query import ast as q
        from repro.server.session import ClientSession

        session = ClientSession(1, "x", q.StreamRef("s"), q.StreamRef("s"), [])
        assert math.isnan(session.mean_latency)
        assert session.latencies == []


class TestLatencyUnderSimulatedStalls:
    """Stalled sources cost simulated seconds only (the stall-injector clock)."""

    def run_query(self, scene, geos_crs, spec=None):
        _, server = make_server(scene, geos_crs, "row")
        if spec is None:
            session = server.register("reflectance(goes.vis)", encode_png=False)
            server.run()
            return session, None
        hardened, injector, ctx = harden_catalog(server.catalog, spec)
        server = DSMSServer(hardened, recovery=ctx)
        session = server.register("reflectance(goes.vis)", encode_png=False)
        with recovering(ctx):
            server.run()
        return session, ctx

    def test_stalls_are_simulated_not_slept(self, scene, geos_crs):
        """A heavily stalled run advances the SimClock, not the wall clock,
        and stream-time delivery lag is identical to the fault-free run."""
        baseline, _ = self.run_query(scene, geos_crs)
        spec = FaultSpec(seed=303, stall=0.5, stall_seconds=30.0)
        stalled, ctx = self.run_query(scene, geos_crs, spec)
        assert isinstance(ctx.clock, SimClock)
        # Dozens of 30-second stalls happened — all in simulated time.
        assert ctx.clock.total_slept >= 30.0
        # Stream-time latency is measured against chunk timestamps, so the
        # stalls do not distort it: same frames, same lag, bit for bit.
        assert len(stalled.frames) == len(baseline.frames)
        assert stalled.latencies == baseline.latencies

    def test_stalled_run_is_deterministic(self, scene, geos_crs):
        spec = FaultSpec(seed=404, stall=0.3, stall_seconds=12.5)
        a, ctx_a = self.run_query(scene, geos_crs, spec)
        b, ctx_b = self.run_query(scene, geos_crs, spec)
        assert ctx_a.clock.total_slept == ctx_b.clock.total_slept > 0
        assert a.latencies == b.latencies
        assert [f.image.t for f in a.frames] == [f.image.t for f in b.frames]
