"""Stream-time delivery latency: buffering shows up as lag (E5 companion)."""

import math

import numpy as np
import pytest

from repro.core import Organization
from repro.ingest import GOESImager, western_us_sector
from repro.server import DSMSServer, StreamCatalog

DAY_T0 = 72_000.0


def make_server(scene, geos_crs, interleave):
    sector = western_us_sector(geos_crs, width=32, height=16)
    imager = GOESImager(
        scene=scene,
        sector_lattice=sector,
        n_frames=2,
        band_interleave=interleave,
        t0=DAY_T0,
    )
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    return imager, DSMSServer(catalog)


NDVI = "ndvi(reflectance(goes.nir), reflectance(goes.vis))"


class TestDeliveryLatency:
    def test_latencies_recorded(self, scene, geos_crs):
        _, server = make_server(scene, geos_crs, "row")
        session = server.register(NDVI)
        server.run()
        assert len(session.latencies) == len(session.frames) == 2
        assert all(np.isfinite(v) for v in session.latencies)
        assert np.isfinite(session.mean_latency)

    def test_single_band_latency_near_zero(self, scene, geos_crs):
        """A restriction-only query delivers as the frame's last row lands."""
        imager, server = make_server(scene, geos_crs, "row")
        session = server.register("reflectance(goes.vis)")
        server.run()
        # The frame completes when its own last row arrives: lag is at most
        # one band-sweep of detector offsets.
        assert session.mean_latency <= imager.row_time * imager.sector_lattice.height

    def test_sequential_band_scan_adds_a_band_of_wait(self, scene, geos_crs):
        """Under sequential band scanning, buffered vis rows wait roughly a
        full band sweep for their nir partners; under row interleaving they
        wait only a detector offset (composition wait-time stats)."""
        from repro.engine import compose_streams
        from repro.operators import StreamComposition

        def mean_wait(interleave):
            imager, _ = make_server(scene, geos_crs, interleave)
            op = StreamComposition("-")
            compose_streams(imager.stream("nir"), imager.stream("vis"), op).count_points()
            return op.stats.mean_wait_time, imager

        wait_row, imager = mean_wait("row")
        wait_seq, imager_seq = mean_wait("band")
        band_duration = imager_seq.sector_lattice.height * imager_seq.row_time
        assert wait_seq > wait_row * 10
        assert wait_seq >= band_duration * 0.9
        # Row interleaving waits only the per-detector offset.
        assert wait_row <= imager.row_time

    def test_no_clock_no_latencies(self, scene, geos_crs):
        """Sessions used outside a server record no latencies."""
        from repro.query import ast as q
        from repro.server.session import ClientSession

        session = ClientSession(1, "x", q.StreamRef("s"), q.StreamRef("s"), [])
        assert math.isnan(session.mean_latency)
        assert session.latencies == []
