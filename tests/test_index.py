"""Spatial indexes: interval tree, cascade tree, baselines — equivalence
with the naive scan is the correctness oracle (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.geo import BoundingBox
from repro.index import CascadeTree, GridRegionIndex, IntervalTree, NaiveRegionIndex


class TestIntervalTree:
    def test_stab_basic(self):
        t = IntervalTree()
        t.insert("a", 0.0, 10.0)
        t.insert("b", 5.0, 15.0)
        t.insert("c", 20.0, 30.0)
        assert sorted(t.stab(7.0)) == ["a", "b"]
        assert t.stab(25.0) == ["c"]
        assert t.stab(17.0) == []

    def test_endpoints_inclusive(self):
        t = IntervalTree()
        t.insert("a", 1.0, 2.0)
        assert t.stab(1.0) == ["a"]
        assert t.stab(2.0) == ["a"]

    def test_remove(self):
        t = IntervalTree()
        t.insert("a", 0.0, 10.0)
        t.remove("a")
        assert t.stab(5.0) == []
        assert len(t) == 0

    def test_duplicate_id_rejected(self):
        t = IntervalTree()
        t.insert("a", 0.0, 1.0)
        with pytest.raises(IndexError_):
            t.insert("a", 2.0, 3.0)

    def test_unknown_remove_rejected(self):
        with pytest.raises(IndexError_):
            IntervalTree().remove("missing")

    def test_degenerate_interval_rejected(self):
        with pytest.raises(IndexError_):
            IntervalTree().insert("a", 2.0, 1.0)

    def test_reinsert_after_remove(self):
        t = IntervalTree()
        t.insert("a", 0.0, 1.0)
        t.remove("a")
        t.insert("a", 5.0, 6.0)
        assert t.stab(5.5) == ["a"]
        assert t.stab(0.5) == []

    def test_interval_of(self):
        t = IntervalTree()
        t.insert("a", 1.0, 2.0)
        assert t.interval_of("a") == (1.0, 2.0)
        with pytest.raises(IndexError_):
            t.interval_of("b")

    @given(
        intervals=st.lists(
            st.tuples(st.floats(-100, 100), st.floats(0, 30)), min_size=0, max_size=60
        ),
        probes=st.lists(st.floats(-130, 160), min_size=1, max_size=10),
        removals=st.sets(st.integers(0, 59), max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_stab_matches_bruteforce(self, intervals, probes, removals):
        t = IntervalTree()
        live = {}
        for i, (lo, w) in enumerate(intervals):
            t.insert(i, lo, lo + w)
            live[i] = (lo, lo + w)
        for i in removals:
            if i in live:
                t.remove(i)
                del live[i]
        for p in probes:
            expected = sorted(i for i, (lo, hi) in live.items() if lo <= p <= hi)
            assert sorted(t.stab(p)) == expected

    @given(
        intervals=st.lists(
            st.tuples(st.floats(-50, 50), st.floats(0, 20)), min_size=0, max_size=40
        ),
        qlo=st.floats(-60, 60),
        qw=st.floats(0, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_overlap_matches_bruteforce(self, intervals, qlo, qw):
        t = IntervalTree()
        live = {}
        for i, (lo, w) in enumerate(intervals):
            t.insert(i, lo, lo + w)
            live[i] = (lo, lo + w)
        qhi = qlo + qw
        expected = sorted(i for i, (lo, hi) in live.items() if hi >= qlo and lo <= qhi)
        assert sorted(t.overlapping(qlo, qhi)) == expected

    def test_adversarial_sorted_insertion_still_fast(self):
        """Periodic rebuilds keep sorted insertion from degrading badly."""
        t = IntervalTree()
        n = 2000
        for i in range(n):
            t.insert(i, float(i), float(i) + 0.5)
        hits = t.stab(float(n // 2) + 0.25)
        assert hits == [n // 2]


def _region_indexes():
    domain = BoundingBox(0.0, 0.0, 100.0, 100.0)
    return {
        "naive": NaiveRegionIndex(),
        "grid": GridRegionIndex(domain, 16, 16),
        "cascade": CascadeTree(),
    }


class TestRegionIndexes:
    @pytest.mark.parametrize("kind", ["naive", "grid", "cascade"])
    def test_basic_protocol(self, kind):
        idx = _region_indexes()[kind]
        box = BoundingBox(10.0, 10.0, 20.0, 20.0)
        idx.insert("q1", box)
        assert "q1" in idx and len(idx) == 1
        assert idx.stab(15.0, 15.0) == ["q1"]
        assert idx.stab(50.0, 50.0) == []
        assert idx.overlapping(BoundingBox(19.0, 19.0, 30.0, 30.0)) == ["q1"]
        idx.remove("q1")
        assert len(idx) == 0

    @pytest.mark.parametrize("kind", ["naive", "grid", "cascade"])
    def test_duplicate_and_unknown(self, kind):
        idx = _region_indexes()[kind]
        idx.insert("q", BoundingBox(0, 0, 1, 1))
        with pytest.raises(IndexError_):
            idx.insert("q", BoundingBox(2, 2, 3, 3))
        with pytest.raises(IndexError_):
            idx.remove("nope")

    @given(
        rects=st.lists(
            st.tuples(
                st.floats(0, 90), st.floats(0, 90), st.floats(0.5, 10), st.floats(0.5, 10)
            ),
            min_size=0,
            max_size=50,
        ),
        probes=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=1, max_size=8
        ),
        removals=st.sets(st.integers(0, 49), max_size=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_all_indexes_agree(self, rects, probes, removals):
        indexes = _region_indexes()
        live = {}
        for i, (x, y, w, h) in enumerate(rects):
            box = BoundingBox(x, y, min(x + w, 100.0), min(y + h, 100.0))
            live[i] = box
            for idx in indexes.values():
                idx.insert(i, box)
        for i in removals:
            if i in live:
                del live[i]
                for idx in indexes.values():
                    idx.remove(i)
        for px, py in probes:
            results = {k: sorted(idx.stab(px, py)) for k, idx in indexes.items()}
            assert results["cascade"] == results["naive"]
            assert results["grid"] == results["naive"]
        window = BoundingBox(25.0, 25.0, 60.0, 60.0)
        results = {k: sorted(idx.overlapping(window)) for k, idx in indexes.items()}
        assert results["cascade"] == results["naive"]
        assert results["grid"] == results["naive"]

    def test_cascade_scales_better_than_naive(self):
        """The headline claim of ref [10] at moderate n."""
        import time

        rng = np.random.default_rng(0)
        cascade, naive = CascadeTree(), NaiveRegionIndex()
        for i in range(3000):
            x, y = rng.uniform(0, 95), rng.uniform(0, 95)
            box = BoundingBox(x, y, x + rng.uniform(0.5, 4), y + rng.uniform(0.5, 4))
            cascade.insert(i, box)
            naive.insert(i, box)
        probes = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(500)]
        t0 = time.perf_counter()
        for px, py in probes:
            cascade.stab(px, py)
        t_cascade = time.perf_counter() - t0
        t0 = time.perf_counter()
        for px, py in probes:
            naive.stab(px, py)
        t_naive = time.perf_counter() - t0
        assert t_cascade < t_naive

    def test_cascade_depth_logarithmic_after_rebuild(self):
        cascade = CascadeTree()
        rng = np.random.default_rng(1)
        for i in range(1000):
            x, y = rng.uniform(0, 95), rng.uniform(0, 95)
            cascade.insert(i, BoundingBox(x, y, x + 1.0, y + 1.0))
        assert cascade.depth() < 60  # far from the worst-case 1000

    def test_cascade_box_of(self):
        cascade = CascadeTree()
        box = BoundingBox(1, 2, 3, 4)
        cascade.insert("q", box)
        assert cascade.box_of("q") == box
        with pytest.raises(IndexError_):
            cascade.box_of("other")

    def test_grid_clustered_regions_degrade_gracefully(self):
        """All regions in one cell: grid approaches naive but stays correct."""
        domain = BoundingBox(0.0, 0.0, 100.0, 100.0)
        grid = GridRegionIndex(domain, 8, 8)
        naive = NaiveRegionIndex()
        rng = np.random.default_rng(2)
        for i in range(100):
            x = rng.uniform(10.0, 11.0)
            y = rng.uniform(10.0, 11.0)
            box = BoundingBox(x, y, x + 0.5, y + 0.5)
            grid.insert(i, box)
            naive.insert(i, box)
        assert sorted(grid.stab(10.7, 10.7)) == sorted(naive.stab(10.7, 10.7))
