"""A chaos drill: inject every fault class, recover, verify bit-equality.

TerraServer's availability lesson is that systems survive what they
drill. This example runs the demo DSMS query twice — once fault-free,
once behind the seeded fault injector at default intensity — and shows
the recovery machinery at work:

1. faults are injected deterministically (drop, dup, reorder, bitflip,
   outrange, truncate, stall, disconnect),
2. resilient sources reconnect with backoff, the frame guard quarantines
   poison and incomplete frames to the dead-letter sink,
3. every frame that survives is **bit-identical** to the fault-free run
   (stream-as-function equivalence on surviving timestamps).

Run:  python examples/chaos_run.py
"""

from __future__ import annotations

import numpy as np

from repro.faults import FaultSpec, harden_catalog, recovering
from repro.geo import goes_geostationary
from repro.ingest import GOESImager, SyntheticEarth, western_us_sector
from repro.server import DSMSServer, StreamCatalog

QUERY = "reflectance(goes.vis)"
# Bad but survivable weather: every fault class fires at this seed, the
# source disconnects twice, and at least one frame still gets through.
SPEC = FaultSpec(
    seed=13,
    drop=0.04,
    dup=0.1,
    reorder=0.15,
    bitflip=0.03,
    outrange=0.02,
    truncate=0.015,
    stall=0.05,
    disconnect=2,
    disconnect_after=25,
)


def make_catalog() -> StreamCatalog:
    imager = GOESImager(
        scene=SyntheticEarth(seed=7),
        sector_lattice=western_us_sector(goes_geostationary(-135.0), width=48, height=24),
        n_frames=4,
        t0=72_000.0,
    )
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    return catalog


def run(catalog, ctx=None):
    server = DSMSServer(catalog, recovery=ctx)
    session = server.register(QUERY, encode_png=False)
    if ctx is None:
        server.run()
    else:
        with recovering(ctx):
            server.run()
    return session


def main() -> None:
    # 1. The fault-free baseline.
    baseline = run(make_catalog())
    by_t = {f.image.t: f.image for f in baseline.frames}
    print(f"baseline: {len(baseline.frames)} frames delivered")

    # 2. The same scan through bad weather, deterministically seeded.
    print(f"\ninjecting: {SPEC}")
    hardened, injector, ctx = harden_catalog(make_catalog(), SPEC)
    session = run(hardened, ctx)

    injected = {k: v for k, v in injector.counts.items() if v}
    print(f"faults injected: {injected}")
    print(
        f"recovery: {ctx.retries} reconnects, "
        f"{ctx.stalls_observed} stalls observed, "
        f"{ctx.clock.total_slept:g}s slept (simulated)"
    )
    print(f"dead letter: {dict(ctx.dead_letter.by_reason)}")

    # 3. The chaos contract: surviving frames are bit-identical.
    survived = len(session.frames)
    identical = all(
        f.image.t in by_t and np.array_equal(f.image.values, by_t[f.image.t].values)
        for f in session.frames
    )
    print(
        f"\ndelivered {survived}/{len(baseline.frames)} frames through the storm; "
        f"bit-identical to baseline: {identical}"
    )
    lost = sorted(set(by_t) - {f.image.t for f in session.frames})
    if lost:
        print(f"frames lost to quarantine (never delivered partially): t={lost}")


if __name__ == "__main__":
    main()
