"""Disaster-management workload: wildfire hotspot watch.

The paper's introduction motivates streaming image processing with
"disaster management" applications. This example plants synthetic
wildfires into the scene's thermal field, then runs a continuous query
combining the paper's operator classes:

* value restriction  — keep only anomalously hot pixels,
* temporal restriction — only the afternoon scan window,
* spatio-temporal aggregates (the Section 6 extension) — per-region
  hot-pixel counts per sector, and a sliding per-pixel maximum that
  persists fire fronts across scans.

Run:  python examples/wildfire_watch.py
"""

from __future__ import annotations

import numpy as np

from repro import BoundingBox, GOESImager, TemporalRestriction, ValueRestriction
from repro.core import TimeInterval
from repro.ingest import Hotspot, SyntheticEarth
from repro.operators import RegionAggregate, Rescale, TemporalAggregate

T0 = 72_000.0  # 20:00 UTC = early afternoon on the US west coast
FRAME_PERIOD = 1800.0
FIRE_START = T0 + FRAME_PERIOD  # ignites during the second scan
HOT_KELVIN = 330.0


def main() -> None:
    scene = SyntheticEarth(
        seed=7,
        hotspots=(
            Hotspot(lon=-121.6, lat=39.8, t_start=FIRE_START, t_end=1e12,
                    radius_deg=0.25, peak_kelvin=460.0),
            Hotspot(lon=-118.9, lat=34.6, t_start=FIRE_START + FRAME_PERIOD,
                    t_end=1e12, radius_deg=0.2, peak_kelvin=430.0),
        ),
    )
    imager = GOESImager(
        scene=scene, bands=("tir",), n_frames=6, frame_period=FRAME_PERIOD, t0=T0
    )

    # GVAR IR counts are inverted (cold = high); recover Kelvin.
    counts_to_kelvin = Rescale(-220.0 / 1023.0, 420.0)
    kelvin = imager.stream("tir").pipe(counts_to_kelvin)

    # Watch regions (fixed-grid coordinates of two fire-prone areas).
    def region(lon0, lat0, lon1, lat1):
        x0, y0 = (float(v) for v in imager.crs.from_lonlat(lon0, lat0))
        x1, y1 = (float(v) for v in imager.crs.from_lonlat(lon1, lat1))
        return BoundingBox(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1), imager.crs)

    watch = {
        "sierra-foothills": region(-122.5, 38.8, -120.5, 40.8),
        "socal-mountains": region(-119.9, 33.8, -117.9, 35.4),
    }

    # Continuous query: afternoon scans only, hot pixels only, count per
    # watch region per scan sector.
    afternoon = TemporalRestriction(TimeInterval(T0, T0 + 6 * FRAME_PERIOD))
    hot_only = ValueRestriction(lo=HOT_KELVIN, hi=None)
    counts = kelvin.pipe(afternoon, hot_only, RegionAggregate(watch, "count"))

    print(f"hot-pixel counts (> {HOT_KELVIN:.0f} K) per watch region per sector:")
    names = sorted(watch)
    print(f"{'sector':>6} " + " ".join(f"{n:>18}" for n in names))
    alarms = []
    for chunk in counts.chunks():
        row = {n: v for n, v in zip(names, chunk.values)}
        print(
            f"{chunk.sector:>6} "
            + " ".join(f"{(0 if np.isnan(row[n]) else int(row[n])):>18d}" for n in names)
        )
        for n in names:
            if not np.isnan(row[n]) and row[n] > 0:
                alarms.append((chunk.sector, n, int(row[n])))

    print()
    if alarms:
        first = alarms[0]
        print(f"ALERT: first hot pixels in sector {first[0]} over {first[1]!r}")
    else:
        print("no hot pixels detected (unexpected — check hotspot configuration)")

    # Per-pixel persistence: max brightness temperature over the last 3 scans.
    persist = kelvin.pipe(TemporalAggregate(window=3, func="max"))
    frames = persist.collect_frames()
    peak = max(float(np.nanmax(f.values)) for f in frames)
    print(f"peak 3-scan max brightness temperature anywhere: {peak:.1f} K")


if __name__ == "__main__":
    main()
