"""Archive, replay, and overload management.

Ground stations archive downlinks; analysts replay them later — and under
overload a DSMS sheds load rather than falling behind (both themes from
the paper's introduction). This example:

1. captures a simulated GOES downlink into ``.gsar`` archive files,
2. replays the archives through the same NDVI pipeline as live data,
   verifying bit-identical results,
3. replays under a constrained processing budget with the adaptive
   load shedder and reports what was traded away.

Run:  python examples/archive_replay.py
"""

from __future__ import annotations

import pathlib
import tempfile

import numpy as np

from repro import GOESImager
from repro.io import read_archive, write_archive
from repro.operators import AdaptiveLoadShedder, ndvi, reflectance


def main() -> None:
    imager = GOESImager(n_frames=6, t0=72_000.0)
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="geostreams_"))

    # 1. Capture the downlink.
    archives = {}
    for band in ("vis", "nir"):
        path = workdir / f"goes_{band}.gsar"
        chunks = write_archive(imager.stream(band), path)
        size_kb = path.stat().st_size / 1024
        archives[band] = path
        print(f"archived goes.{band}: {chunks} chunks, {size_kb:,.0f} KiB -> {path.name}")

    # 2. Replay and compare against the live pipeline.
    live = ndvi(
        reflectance(imager.stream("nir")), reflectance(imager.stream("vis"))
    ).collect_frames()
    replayed = ndvi(
        reflectance(read_archive(archives["nir"])),
        reflectance(read_archive(archives["vis"])),
    ).collect_frames()
    identical = all(
        np.array_equal(a.values, b.values, equal_nan=True)
        for a, b in zip(live, replayed)
    )
    print(f"\nreplayed {len(replayed)} NDVI frames; identical to live: {identical}")

    # 3. Replay under a 40% processing budget: the shedder drops whole
    # frames to keep up instead of buffering without bound.
    frame_points = imager.sector_lattice.n_points
    shedder = AdaptiveLoadShedder(points_per_frame_budget=frame_points * 0.4)
    surviving = read_archive(archives["vis"]).pipe(shedder).collect_frames()
    print(
        f"\nunder a 40% budget: kept {len(surviving)}/{shedder.frames_seen} frames "
        f"(shed fraction {shedder.shed_fraction:.0%}, {shedder.points_shed:,} points dropped)"
    )
    print("kept sectors:", [f.sector for f in surviving])
    print(f"\n(archives left in {workdir} for inspection)")


if __name__ == "__main__":
    main()
