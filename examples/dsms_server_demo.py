"""Multi-client DSMS demo (the architecture of Fig. 3).

Several web clients register continuous queries over the same GOES
streams via the HTTP-style protocol; the server optimizes each, routes
the single source scan through the shared cascade-tree restriction stage,
and delivers PNG frames (or aggregate records) per scan sector.

Run:  python examples/dsms_server_demo.py
"""

from __future__ import annotations

import pathlib

from repro import DSMSServer, GOESImager, StreamCatalog
from repro.server import format_query_request

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def geos_bbox(imager: GOESImager, lon0: float, lat0: float, lon1: float, lat1: float) -> str:
    """Format a lat/lon rectangle as a fixed-grid bbox() term."""
    x0, y0 = (float(v) for v in imager.crs.from_lonlat(lon0, lat0))
    x1, y1 = (float(v) for v in imager.crs.from_lonlat(lon1, lat1))
    return (
        f"bbox({min(x0, x1):.0f}, {min(y0, y1):.0f}, {max(x0, x1):.0f}, "
        f"{max(y0, y1):.0f}, crs='geos:-135')"
    )


def main() -> None:
    imager = GOESImager(n_frames=3, t0=72_000.0)
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    server = DSMSServer(catalog)

    print("streams:", server.handle_request("GET /streams HTTP/1.1"), "\n")

    clients = {
        "sacramento-ndvi": (
            "within(stretch(ndvi(reflectance(goes.nir), reflectance(goes.vis)), "
            f"'linear'), {geos_bbox(imager, -122.5, 38.0, -120.5, 40.0)})"
        ),
        "socal-visible": (
            f"within(stretch(reflectance(goes.vis), 'equalize'), "
            f"{geos_bbox(imager, -120.0, 32.5, -114.5, 35.5)})"
        ),
        "nevada-mean-reflectance": (
            f"ragg(reflectance(goes.vis), 'mean', 'nevada', "
            f"{geos_bbox(imager, -120.0, 37.0, -114.0, 42.0)})"
        ),
    }

    sessions = {}
    for name, text in clients.items():
        session = server.handle_request(format_query_request(text))
        sessions[name] = session
        rules = ", ".join(sorted(set(session.applied_rules))) or "(none)"
        print(f"registered {name!r} as session #{session.session_id}; rewrites: {rules}")

    print("\nrunning the shared scan...")
    stats = server.run()
    print(
        f"scan complete: {stats.chunks_scanned} chunks scanned, "
        f"{stats.pairs_routed} (chunk, query) pairs fed, "
        f"{stats.pairs_skipped} pruned by the cascade tree "
        f"({stats.prune_fraction:.0%} pruned)\n"
    )

    OUTPUT_DIR.mkdir(exist_ok=True)
    for name, session in sessions.items():
        if session.frames:
            for i, frame in enumerate(session.frames):
                path = OUTPUT_DIR / f"dsms_{name}_{i}.png"
                path.write_bytes(frame.png)
            print(f"{name}: delivered {len(session.frames)} PNG frames "
                  f"({session.points_received} points) -> {OUTPUT_DIR.name}/dsms_{name}_*.png")
        for record in session.records:
            print(
                f"{name}: sector {record.sector} {record.band} = {record.value:.4f}"
            )


if __name__ == "__main__":
    main()
