"""Quickstart: from a simulated GOES downlink to an NDVI image.

Builds the simulated imager, computes the paper's running-example data
product (NDVI over a region of interest), and writes the delivered frames
as PNG files.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro import BoundingBox, GOESImager, SpatialRestriction
from repro.operators import ndvi, reflectance

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def main() -> None:
    # A GOES-West-like imager scanning a western-US sector four times,
    # starting at 20:00 UTC so the visible band sees daylight.
    imager = GOESImager(n_frames=4, t0=72_000.0)
    print(f"sector: {imager.sector_lattice.shape[0]}x{imager.sector_lattice.shape[1]} "
          f"pixels in {imager.crs.name}")

    # Calibrate both bands and compose them into NDVI (Def. 10):
    # (NIR - VIS) / (NIR + VIS), matched by scan-sector identifier.
    vis = reflectance(imager.stream("vis"))
    nir = reflectance(imager.stream("nir"))
    product = ndvi(nir, vis)

    # Restrict to a region of interest around Northern California
    # (expressed in the imager's fixed-grid CRS).
    gx0, gy0 = imager.crs.from_lonlat(-124.0, 36.5)
    gx1, gy1 = imager.crs.from_lonlat(-119.0, 41.0)
    roi = BoundingBox(
        min(float(gx0), float(gx1)),
        min(float(gy0), float(gy1)),
        max(float(gx0), float(gx1)),
        max(float(gy0), float(gy1)),
        imager.crs,
    )
    restricted = product.pipe(SpatialRestriction(roi))

    OUTPUT_DIR.mkdir(exist_ok=True)
    for i, frame in enumerate(restricted.collect_frames()):
        finite = frame.values[np.isfinite(frame.values)]
        path = OUTPUT_DIR / f"quickstart_ndvi_{i}.png"
        path.write_bytes(frame.to_png_bytes())
        print(
            f"frame {i} (sector {frame.sector}): {frame.shape[0]}x{frame.shape[1]} "
            f"ndvi mean={finite.mean():+.3f} range=[{finite.min():+.3f}, "
            f"{finite.max():+.3f}] -> {path.name}"
        )


if __name__ == "__main__":
    main()
