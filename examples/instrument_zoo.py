"""Figure 1 reproduction: the three point-set organizations.

Generates streams from all three simulated instruments and prints, for
each, the organization plus spatial-proximity statistics between
consecutive points — demonstrating the paper's observation that
"consecutive points in a GeoStream have a close spatial proximity ...
except for the case where the last point of one frame is followed by the
first point of a new frame".

Run:  python examples/instrument_zoo.py
"""

from __future__ import annotations

import numpy as np

from repro import AirborneCamera, GOESImager, LidarScanner
from repro.geo import haversine_m
from repro.ingest import SyntheticEarth


def proximity_profile(xs: np.ndarray, ys: np.ndarray) -> tuple[float, float, float]:
    """(median, p99, max) distance in meters between consecutive points."""
    d = haversine_m(xs[:-1], ys[:-1], xs[1:], ys[1:])
    return float(np.median(d)), float(np.percentile(d, 99)), float(d.max())


def coords_of(stream) -> tuple[np.ndarray, np.ndarray]:
    xs, ys = [], []
    for chunk in stream.chunks():
        if hasattr(chunk, "lattice"):
            lon, lat = chunk.lattice.crs.to_lonlat(*chunk.flat_coords())
        else:
            lon, lat = chunk.x, chunk.y
        xs.append(np.asarray(lon).ravel())
        ys.append(np.asarray(lat).ravel())
    return np.concatenate(xs), np.concatenate(ys)


def main() -> None:
    scene = SyntheticEarth(seed=7)

    instruments = {
        "airborne camera (Fig. 1a)": AirborneCamera(
            scene=scene, n_frames=4, frame_width=24, frame_height=18,
            frame_spacing_deg=0.4,
        ).stream(),
        "GOES imager (Fig. 1b)": GOESImager(
            scene=scene, n_frames=1, t0=72_000.0
        ).stream("vis"),
        "LIDAR (Fig. 1c)": LidarScanner(
            scene=scene, n_points=2_000, points_per_chunk=250
        ).stream(),
    }

    print(f"{'instrument':<28} {'organization':<16} {'median step':>12} "
          f"{'p99 step':>12} {'max step':>12}")
    print("-" * 84)
    for name, stream in instruments.items():
        xs, ys = coords_of(stream)
        med, p99, mx = proximity_profile(xs, ys)
        print(
            f"{name:<28} {stream.organization.value:<16} "
            f"{med:>10.0f} m {p99:>10.0f} m {mx:>10.0f} m"
        )

    print(
        "\nNote the airborne camera's max step: the jump between frames that\n"
        "cover different spatial regions — only *temporal* proximity holds\n"
        "there, exactly as the paper describes."
    )


if __name__ == "__main__":
    main()
