"""Continuous vegetation monitoring with query optimization.

Reproduces Section 3.4's running example end to end:

    ((f_val((G1 - G2) / (G2 + G1))) f_UTM) |R

i.e. NDVI -> contrast stretch -> re-projection to UTM -> restriction to a
UTM region of interest — then shows what the optimizer does to it
(restriction pushdown with the region mapped from UTM back to the
satellite's fixed-grid CRS) and compares the measured per-operator work
of the naive and rewritten plans.

Run:  python examples/ndvi_monitoring.py
"""

from __future__ import annotations

import pathlib
import time

from repro import GOESImager, StreamCatalog
from repro.engine import format_report, pipeline_report
from repro.geo import BoundingBox, utm
from repro.query import optimize, parse_query, plan_query

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def main() -> None:
    imager = GOESImager(n_frames=2, t0=72_000.0)
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    sources = {sid: catalog.get(sid) for sid in catalog.ids()}

    # Region of interest given in UTM zone 10 (the paper's R).
    utm10 = utm(10)
    x0, y0 = (float(v) for v in utm10.from_lonlat(-122.5, 37.5))
    x1, y1 = (float(v) for v in utm10.from_lonlat(-120.0, 40.0))
    roi = BoundingBox(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1), utm10)

    query_text = (
        "within(reproject(stretch(ndvi(reflectance(goes.nir), reflectance(goes.vis)),"
        f" 'linear'), 'utm:10'), bbox({roi.xmin:.0f}, {roi.ymin:.0f}, {roi.xmax:.0f},"
        f" {roi.ymax:.0f}, crs='utm:10'))"
    )
    print("query:")
    print(" ", query_text, "\n")

    tree = parse_query(query_text)
    print("original plan:")
    print(tree.pretty(indent=1), "\n")

    result = optimize(tree, dict(catalog.crs_of()))
    print("optimized plan (rules: " + ", ".join(sorted(set(result.applied))) + "):")
    print(result.node.pretty(indent=1), "\n")

    for label, ast in (("naive", tree), ("optimized", result.node)):
        plan = plan_query(ast, sources)
        t_start = time.perf_counter()
        frames = plan.collect_frames()
        elapsed = time.perf_counter() - t_start
        print(f"--- {label}: {len(frames)} frames in {elapsed:.3f}s ---")
        print(format_report(pipeline_report(plan)))
        print()
        OUTPUT_DIR.mkdir(exist_ok=True)
        out = OUTPUT_DIR / f"ndvi_monitoring_{label}.png"
        out.write_bytes(frames[0].to_png_bytes())
        print(f"wrote {out.name}\n")


if __name__ == "__main__":
    main()
