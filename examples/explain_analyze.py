"""EXPLAIN ANALYZE over the shared plan DAG, end to end.

Two continuous queries sharing a reflectance prefix run under the stage
statistics collector; the analyzed DAG then shows, per physical stage,
the observed chunks/rows/bytes/wall-time next to the seed cost model's
estimate. A `CalibrationProfile` fitted from the same run re-prices the
estimates in measured seconds-per-work-unit — the second rendering shows
the calibration deltas — and the delivered frames answer "which stages
and which raw scans produced you" through their provenance tags.

Run:  python examples/explain_analyze.py
"""

from __future__ import annotations

from repro import DSMSServer, GOESImager, StreamCatalog, obs
from repro.query import CalibrationProfile

QUERIES = [
    "vrange(reflectance(goes.vis), 0.0, 0.4)",
    "stretch(reflectance(goes.vis), 'linear')",
]


def main() -> None:
    imager = GOESImager(n_frames=2, t0=72_000.0)
    catalog = StreamCatalog()
    catalog.register_imager(imager)

    with obs.observe(stats=True) as ob:
        server = DSMSServer(catalog)
        sessions = [server.register(text) for text in QUERIES]
        server.run()

        print("=== EXPLAIN ANALYZE, seed cost model ===")
        print(server.explain_analyze(collector=ob.stats))

        samples = server.calibration_samples(ob.stats)
        fitted = CalibrationProfile.fit(samples)
        print("\nfitted coefficients (seconds per work unit):")
        for kind, coef in sorted(fitted.coefficients.items()):
            print(f"  {kind:<18} {coef:.3e}")

        print("\n=== EXPLAIN ANALYZE, calibrated ===")
        print(server.explain_analyze(collector=ob.stats, calibration=fitted))

    print("\nprovenance of each query's last delivered frame:")
    for text, session in zip(QUERIES, sessions):
        frame = session.frames[-1]
        print(f"  {text}")
        print(f"    {obs.format_lineage(frame, dag=server.plan_dag)}")


if __name__ == "__main__":
    main()
