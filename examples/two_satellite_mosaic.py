"""Two-satellite mosaic: composing GOES-West and GOES-East.

Each geostationary satellite sees the Earth from its own fixed grid, with
its own distortions and its own blind regions. Re-projecting both onto a
*shared* latitude/longitude lattice makes them composable (Def. 10's
same-point-lattice precondition), and the NaN-aware ``mosaic`` kernel
fills each pixel from whichever satellite covers it:

    mosaic(reproject(G_west, L), reproject(G_east, L))

Run:  python examples/two_satellite_mosaic.py
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro import GOESImager
from repro.core import GridLattice
from repro.engine import compose_streams
from repro.geo import BoundingBox, plate_carree
from repro.ingest import SyntheticEarth
from repro.operators import Reproject, StreamComposition, reflectance

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

# A deliberately over-wide area: neither satellite sees all of it, so the
# mosaic demonstrably fills each platform's blind edge from the other.
WIDE_BOX = (-170.0, 5.0, -30.0, 50.0)


def build_imager(scene: SyntheticEarth, lon_0: float) -> GOESImager:
    """A satellite at ``lon_0`` scanning the same CONUS-wide sector."""
    crs = None
    from repro.geo import goes_geostationary

    crs = goes_geostationary(lon_0)
    # Image of the CONUS lon/lat box in this satellite's fixed grid.
    from repro.geo import LATLON

    geo_box = BoundingBox(*WIDE_BOX, LATLON).transformed(crs)
    sector = GridLattice.from_bbox(
        geo_box, dx=geo_box.width / 160, dy=geo_box.height / 64, crs=crs
    )
    return GOESImager(
        scene=scene, lon_0=lon_0, sector_lattice=sector, n_frames=2, t0=72_000.0
    )


def main() -> None:
    scene = SyntheticEarth(seed=7)
    west = build_imager(scene, -135.0)  # GOES-West
    east = build_imager(scene, -75.0)  # GOES-East

    # The shared target lattice both satellites re-project onto.
    pc = plate_carree()
    geo = BoundingBox(*WIDE_BOX)
    x0, y0 = pc.from_lonlat(geo.xmin, geo.ymin)
    x1, y1 = pc.from_lonlat(geo.xmax, geo.ymax)
    target_box = BoundingBox(float(x0), float(y0), float(x1), float(y1), pc)
    target = GridLattice.from_bbox(
        target_box, dx=target_box.width / 192, dy=target_box.height / 72, crs=pc
    )

    west_view = reflectance(west.stream("vis")).pipe(Reproject(pc, dst_lattice=target))
    east_view = reflectance(east.stream("vis")).pipe(Reproject(pc, dst_lattice=target))

    op = StreamComposition("mosaic", band="vis-mosaic")
    mosaic = compose_streams(west_view, east_view, op)

    OUTPUT_DIR.mkdir(exist_ok=True)
    for i, frame in enumerate(mosaic.collect_frames()):
        w = west_view.collect_frames()[i].values
        e = east_view.collect_frames()[i].values
        cov_w = np.isfinite(w).mean()
        cov_e = np.isfinite(e).mean()
        cov_m = np.isfinite(frame.values).mean()
        path = OUTPUT_DIR / f"mosaic_{i}.png"
        path.write_bytes(frame.to_png_bytes())
        print(
            f"sector {frame.sector}: coverage west={cov_w:.0%} east={cov_e:.0%} "
            f"mosaic={cov_m:.0%} -> {path.name}"
        )
    print(
        "\nThe mosaic's coverage meets or exceeds either satellite alone — "
        "each pixel is served by whichever platform sees it."
    )


if __name__ == "__main__":
    main()
