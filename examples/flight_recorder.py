"""Frame-level tracing and the flight recorder, end to end.

Every chunk a traced source emits carries a ``TraceContext``; delivery
stitches the contexts into a ``FrameTrace`` — a per-hop waterfall of
wall time, queue wait, and point throughput whose stage hops are keyed
by the same subplan fingerprints EXPLAIN ANALYZE uses. The flight
recorder keeps a bounded ring of recent traces per query plus pinned
captures of anything interesting: SLO breaches, injected faults, and
quarantined frames pin automatically.

This example runs the demo scan three ways:

1. a clean traced run — render the last delivered frame's waterfall and
   walk the recorder ring,
2. a chaos run behind the seeded fault injector — show the auto-pinned
   traces with their ``fault:<kind>`` / ``recovery:*`` annotations,
3. export — the pinned captures serialize to Chrome trace-event JSON
   (load in chrome://tracing or Perfetto) and an OTLP-shaped document.

Run:  python examples/flight_recorder.py
"""

from __future__ import annotations

import json

from repro import DSMSServer, GOESImager, StreamCatalog, obs
from repro.faults import FaultSpec, harden_catalog, recovering
from repro.obs import traces_to_chrome, traces_to_otlp

QUERY = "stretch(reflectance(goes.vis), 'linear')"


def make_catalog() -> StreamCatalog:
    imager = GOESImager(n_frames=3, t0=72_000.0)
    catalog = StreamCatalog()
    catalog.register_imager(imager)
    return catalog


def clean_run() -> None:
    print("=== 1. clean traced run ===")
    with obs.observe(frame_trace=True):  # sample every chunk
        server = DSMSServer(make_catalog())
        session = server.register(QUERY, encode_png=False)
        server.run()

        trace = server.frame_trace(session.frames[-1])
        print(obs.render_waterfall(trace))

        ring = server.recent_traces(session)
        print(f"flight-recorder ring holds {len(ring)} trace(s) for this query:")
        for t in ring:
            ship = t.hop_by_key("delivery")
            compute = sum(h.wall_s for h in t.hops)
            print(
                f"  t={t.frame_t:g}  {len(t.hops)} hops  "
                f"{ship.points_in} points  {compute * 1e3:.2f} ms compute"
            )
        # Stage hops cross-reference EXPLAIN ANALYZE by fingerprint.
        fps = sorted(fp[:10] for fp in trace.stage_fingerprints())
        print(f"stage fingerprints (link into the cost table): {fps}")


def chaos_run():
    print("\n=== 2. chaos run: faults auto-pin traces ===")
    ftracer = obs.enable_frame_tracing()  # manual install, no context manager
    try:
        spec = FaultSpec(seed=101, drop=0.08, bitflip=0.03)
        hardened, injector, ctx = harden_catalog(make_catalog(), spec)
        server = DSMSServer(hardened, recovery=ctx)
        server.register(QUERY, encode_png=False)
        with recovering(ctx):
            server.run()

        injected = {k: v for k, v in injector.counts.items() if v}
        print(f"faults injected: {injected}")
        pinned = list(ftracer.recorder.pinned)
        reasons: dict[str, int] = {}
        for t in pinned:
            reasons[t.pin_reason] = reasons.get(t.pin_reason, 0) + 1
        print(f"auto-pinned captures: {len(pinned)}")
        for reason, count in sorted(reasons.items()):
            print(f"  {count:3d} x pinned for {reason!r}")
        # Show the fault-struck captures in detail — the ones a debugging
        # session would open first.
        for t in pinned:
            if not any(n.startswith("fault:") for n in t.annotations):
                continue
            flavor = "PARTIAL" if t.partial else f"t={t.frame_t:g}"
            print(f"  [{flavor}] annotations: {list(t.annotations)}")
        return pinned
    finally:
        obs.disable_frame_tracing()


def export(pinned) -> None:
    print("\n=== 3. export pinned captures ===")
    chrome = traces_to_chrome(pinned)
    otlp = traces_to_otlp(pinned)
    print(f"chrome trace-event doc: {len(chrome['traceEvents'])} events")
    spans = sum(
        len(scope["spans"])
        for res in otlp["resourceSpans"]
        for scope in res["scopeSpans"]
    )
    print(f"otlp doc: {len(otlp['resourceSpans'])} resourceSpans, {spans} spans")
    # Write them next to this script the way the CLI's --export-chrome /
    # --export-otlp flags would:
    for name, doc in (("flight_chrome.json", chrome), ("flight_otlp.json", otlp)):
        with open(name, "w") as fh:
            json.dump(doc, fh, indent=1)
        print(f"wrote {name}")


def main() -> None:
    clean_run()
    pinned = chaos_run()
    if pinned:
        export(pinned)


if __name__ == "__main__":
    main()
